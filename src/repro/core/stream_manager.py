"""The stream manager: registry, subscriptions, and the scheduler.

"The central component of Gigascope is a stream manager which tracks
the query nodes that can be activated.  [...] When a user application
or query node needs to subscribe to the output of a query, it submits
the query name to the registry and receives a query handle in return."

Process model: LFTAs (and other packet consumers, e.g. the defrag
operator) are *linked into* the run-time system -- ``feed_packet``
calls them directly with no queue in between, which is why the LFTA set
is fixed once the RTS starts ("all queries which generate LFTAs must be
submitted in a batch"; changing them requires a stop/restart).  HFTAs
are separate query nodes connected by channels and driven by
:meth:`RuntimeSystem.pump`.

The manager is also the heartbeat source: it injects ordering-update
tokens periodically in stream time, and on demand when a blocked
operator asks (Section 3, "Unblocking Operators").
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.channels import Channel
from repro.core.heartbeat import FLUSH, FlushToken, Punctuation
from repro.core.query_node import QueryNode
from repro.gsql.schema import PacketView
from repro.net.packet import CapturedPacket
from repro.obs.collectors import engine_snapshot, install_engine_metrics
from repro.obs.registry import MetricsRegistry

#: default number of packets per batch on the vectorized path
DEFAULT_BATCH_SIZE = 256


class RegistryError(RuntimeError):
    """Raised for registration and subscription errors."""


class Subscription:
    """A query handle: the consumer side of an output channel."""

    def __init__(self, name: str, channel: Channel,
                 manager: Optional["RuntimeSystem"] = None) -> None:
        self.name = name
        self.channel = channel
        self.manager = manager
        self.ended = False

    def poll(self) -> List[tuple]:
        """All data tuples received since the last poll."""
        rows = []
        tracer = self.manager.tracer if self.manager is not None else None
        for item in self.channel.drain():
            if type(item) is tuple:
                rows.append(item)
                if tracer is not None:
                    trace = tracer.lookup(item)
                    if trace is not None:
                        tracer.event(trace, "app", self.name,
                                     self.manager.stream_time)
            elif isinstance(item, FlushToken):
                self.ended = True
        return rows

    def poll_raw(self) -> List[Any]:
        """Everything, including punctuation and flush tokens."""
        return self.channel.drain()

    def __len__(self) -> int:
        return len(self.channel)


class RuntimeSystem:
    """The Gigascope RTS: registry, packet dispatch, scheduling, heartbeats."""

    def __init__(self, heartbeat_interval: Optional[float] = 1.0,
                 on_demand_heartbeats: bool = True,
                 metrics: bool = True,
                 cost_model=None,
                 batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        self.heartbeat_interval = heartbeat_interval
        self.on_demand_heartbeats = on_demand_heartbeats
        #: packets per block on the vectorized path (DESIGN section 10);
        #: <= 1 disables batching entirely (pure scalar execution)
        self.batch_size = batch_size
        self.batches_fed = 0
        #: per-interface dispatch plans, rebuilt lazily after any change
        #: to the consumer set (registration, removal, quarantine)
        self._batch_plans: Dict[str, tuple] = {}
        self._nodes: Dict[str, QueryNode] = {}
        self._packet_consumers: Dict[str, List[QueryNode]] = {}
        self._all_consumers: List[QueryNode] = []
        self._hfta_order: List[QueryNode] = []
        self._started = False
        self._stream_time = -math.inf
        self._last_heartbeat = -math.inf
        self._heartbeat_wanted = False
        self.packets_fed = 0
        self.bytes_fed = 0
        self.heartbeats_sent = 0
        #: heartbeats suppressed by an injected HeartbeatSilence fault
        self.heartbeats_suppressed = 0
        #: packets an injected fault dropped before dispatch
        self.fault_dropped = 0
        #: armed fault injectors (see repro.faults)
        self.faults: List = []
        #: node name -> error string, for every node quarantined so far
        self.quarantined: Dict[str, str] = {}
        self.nodes_quarantined = 0
        #: the overload control plane, if enabled (see repro.control)
        self.controller = None
        #: the recovery supervisor, if enabled (see repro.recovery)
        self.supervisor = None
        #: the replication shipper, if enabled (see repro.replication)
        self.replicator = None
        #: the alert evaluation plane, if enabled (see repro.alerts)
        self.alert_engine = None
        #: the self-telemetry hub, if enabled (see repro.obs.telemetry)
        self.telemetry = None
        #: the sampled-lineage tracer, if enabled (see repro.obs.tracing)
        self.tracer = None
        #: virtual-time cost model for latency accounting (lazy default)
        self.cost_model = cost_model
        #: the metrics registry (repro.obs); None when metrics disabled
        self.metrics: Optional[MetricsRegistry] = None
        self._pump_cycle_hist = None
        if metrics:
            self.metrics = MetricsRegistry()
            install_engine_metrics(self.metrics, self)
            self._pump_cycle_hist = self.metrics.histogram(
                "gs_pump_cycle_virtual_us",
                "estimated virtual-time microseconds of HFTA work per "
                "pump cycle (Section 4 cost model)")
            if self.cost_model is None:
                from repro.sim.cost_model import CostModel
                self.cost_model = CostModel()

    # -- registry -------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._started

    def node(self, name: str) -> QueryNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise RegistryError(f"no query node named {name!r}") from None

    def names(self) -> List[str]:
        return sorted(self._nodes)

    def iter_nodes(self) -> Iterator[Tuple[str, QueryNode]]:
        """All registered ``(name, node)`` pairs."""
        return iter(self._nodes.items())

    def channels(self) -> Iterator[Channel]:
        """Every live output channel (node-to-node and node-to-app)."""
        for node in self._nodes.values():
            yield from node.subscribers

    def register_node(self, node: QueryNode,
                      packet_interface: Optional[str] = None) -> None:
        """Register a node; packet consumers bind to an interface.

        Packet consumers (LFTAs, defrag, ...) are linked into the RTS
        and may only be added while it is stopped.
        """
        if node.name in self._nodes:
            raise RegistryError(f"query node {node.name!r} already registered")
        if packet_interface is not None and self._started:
            raise RegistryError(
                "LFTAs are linked into the RTS and must be submitted in a "
                "batch before start(); stop() the RTS to change them"
            )
        self._nodes[node.name] = node
        node.manager = self
        self._batch_plans.clear()
        if packet_interface is not None:
            self._packet_consumers.setdefault(packet_interface, []).append(node)
            self._all_consumers.append(node)
        else:
            self._hfta_order.append(node)

    def connect(self, consumer: QueryNode, input_names: Iterable[str],
                capacity: Optional[int] = None) -> None:
        """Wire ``consumer``'s inputs to the named producers' outputs."""
        for name in input_names:
            producer = self.node(name)
            channel = producer.subscribe(
                capacity=capacity, name=f"{name}->{consumer.name}"
            )
            consumer.attach_input(channel)
            consumer.input_links.append((producer, channel))

    def remove_node(self, name: str, force: bool = False) -> None:
        """Deregister a node and detach its channels.

        Packet consumers (LFTAs) cannot be removed while started -- the
        LFTA batch restriction works both ways.  Nodes with subscribers
        are refused unless ``force`` (the engine forces when it removes
        a whole query after checking no other query depends on it; any
        remaining application subscriptions receive a flush token so
        ``Subscription.ended`` becomes True instead of dangling forever).
        """
        node = self.node(name)
        self._batch_plans.clear()
        if node in self._all_consumers:
            if self._started:
                raise RegistryError(
                    "LFTAs are linked into the RTS; stop() before "
                    "removing one"
                )
            for consumers in self._packet_consumers.values():
                if node in consumers:
                    consumers.remove(node)
            self._all_consumers.remove(node)
        if node.subscribers and not force:
            raise RegistryError(
                f"{name!r} still has {len(node.subscribers)} subscriber(s); "
                "remove the dependents first"
            )
        if node in self._hfta_order:
            self._hfta_order.remove(node)
        for producer, channel in node.input_links:
            if channel in producer.subscribers:
                producer.subscribers.remove(channel)
        # End the stream for whoever is still listening (application
        # subscriptions): the removed query will never produce again.
        for channel in node.subscribers:
            channel.push(FLUSH)
        # Detach from the manager so stray on-demand heartbeat requests
        # from the removed node no longer mutate this RTS.
        node.manager = None
        del self._nodes[name]

    def subscribe(self, name: str, capacity: Optional[int] = None) -> Subscription:
        """Application-side subscription to any query's output stream."""
        producer = self.node(name)
        channel = producer.subscribe(capacity=capacity, name=f"{name}->app")
        return Subscription(name, channel, manager=self)

    # -- fault injection & containment (repro.faults) -----------------------
    def install_fault(self, fault) -> None:
        """Arm a fault injector's runtime hooks (see :mod:`repro.faults`)."""
        self.faults.append(fault)

    def _quarantine(self, node: QueryNode, error: Exception) -> None:
        """Contain a failing node instead of unwinding the whole cycle.

        The node is counted, detached from the packet path and the HFTA
        schedule, and its downstream receives FLUSH so dependents and
        application subscriptions terminate cleanly -- every sibling
        keeps running and keeps being accounted.  The node stays in the
        registry so its statistics (and the quarantine reason) remain
        visible.
        """
        node.quarantined = f"{type(error).__name__}: {error}"
        self.quarantined[node.name] = node.quarantined
        self.nodes_quarantined += 1
        self._batch_plans.clear()
        if node in self._hfta_order:
            self._hfta_order.remove(node)
        if node in self._all_consumers:
            for consumers in self._packet_consumers.values():
                if node in consumers:
                    consumers.remove(node)
            self._all_consumers.remove(node)
        # Producers stop filling the dead node's input channels.
        for producer, channel in node.input_links:
            if channel in producer.subscribers:
                producer.subscribers.remove(channel)
        # The failed query will never produce again: end its streams.
        for channel in node.subscribers:
            channel.push(FLUSH)

    def _contain(self, node: QueryNode, error: Exception) -> bool:
        """Offer a failing node to the recovery supervisor, else quarantine.

        True means the caller's loop may continue past the node: it was
        either recovered in place (restored from the last checkpoint
        with its journal gap replayed) or suspended for a backoff retry
        (its ``quarantined`` marker makes every scheduler skip it until
        the supervisor resumes it).  False is today's permanent
        quarantine, with identical containment accounting.
        """
        supervisor = self.supervisor
        if supervisor is not None and supervisor.on_failure(node, error):
            tracer = self.tracer
            if (tracer is not None and tracer.current is not None
                    and node.quarantined is None):
                tracer.event(tracer.current, "recovered", node.name,
                             self._stream_time)
            return True
        self._quarantine(node, error)
        return False

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        self._started = True
        if self.supervisor is not None:
            self.supervisor.on_start()

    def stop(self) -> None:
        """Stop so the LFTA set can change ("we can change the RTS in seconds")."""
        self._started = False

    # -- packet path ----------------------------------------------------------------
    @property
    def stream_time(self) -> float:
        return self._stream_time

    def _plan_for(self, interface: str) -> tuple:
        """The cached dispatch plan for one interface.

        ``(scalar_entries, batch_entries, share_views)`` where

        * ``scalar_entries`` -- ``(node, wants_view)`` pairs in scalar
          dispatch order: interface consumers, then ``"any"`` consumers
          (for ``interface == "any"`` just the any-consumers);
        * ``batch_entries`` -- ``(node, accept_batch_or_None, wants_view)``
          for the interface's *own* consumers only (batched dispatch
          hands any-consumers the whole batch separately);
        * ``share_views`` -- build one shared :class:`PacketView` per
          packet (more than one consumer and at least one wants it).

        Only node identities and static flags are cached; per-packet
        handlers (``accept_packet``) are looked up at call time so a
        fault injector's instance-level wrap is never bypassed.
        """
        plan = self._batch_plans.get(interface)
        if plan is None:
            own = [node for node in self._packet_consumers.get(interface, ())
                   if node.quarantined is None]
            anys: List[QueryNode] = []
            if interface != "any":
                anys = [node for node in self._packet_consumers.get("any", ())
                        if node.quarantined is None]
            combined = own + anys
            scalar_entries = tuple(
                (node, getattr(node, "accepts_view", False))
                for node in combined)
            batch_entries = tuple(
                (node, getattr(node, "accept_batch", None),
                 getattr(node, "accepts_view", False))
                for node in own)
            share = len(combined) > 1 and any(w for _, w in scalar_entries)
            plan = (scalar_entries, batch_entries, share)
            self._batch_plans[interface] = plan
        return plan

    def feed_packet(self, packet: CapturedPacket) -> None:
        """Hand one captured packet to every consumer on its interface."""
        if not self._started:
            raise RegistryError("RTS not started; call start() first")
        for fault in self.faults:
            packet = fault.on_packet(packet, self)
            if packet is None:
                # Dropped by an injected fault before it reached the
                # host path; the injector's ledger has the count too.
                self.fault_dropped += 1
                return
        self.packets_fed += 1
        self.bytes_fed += packet.caplen
        if packet.timestamp > self._stream_time:
            self._stream_time = packet.timestamp
        if self.supervisor is not None:
            # Journal-before-dispatch: the journal must cover the very
            # packet a consumer crashes on (DESIGN section 11).
            self.supervisor.journal_packet(packet)
        tracer = self.tracer
        trace = None
        if tracer is not None:
            trace = tracer.wants(packet)
            if trace is not None and not tracer.begin(
                    trace, packet, "feed", packet.timestamp):
                trace = None
        # Consumers bound to the "any" pseudo-interface see every packet
        # regardless of where it arrived (FROM any.tcp); the cached plan
        # already appends them.
        scalar_entries, _, share = self._plan_for(packet.interface)
        view = None
        if share:
            # Several LFTAs share one header parse per packet -- the
            # zero-extra-transfer property of linking them into the RTS.
            view = PacketView(packet)
        for node, wants_view in scalar_entries:
            if node.quarantined is not None:
                continue
            if trace is not None:
                tracer.event(trace, "lfta", node.name, packet.timestamp)
                tracer.current = trace
            try:
                if view is not None and wants_view:
                    node.accept_packet(packet, view)
                else:
                    node.accept_packet(packet)
            except Exception as error:
                self._contain(node, error)
        if trace is not None:
            tracer.current = None
        if (
            self.heartbeat_interval is not None
            and self._stream_time >= self._last_heartbeat + self.heartbeat_interval
        ):
            self._send_heartbeats(self._stream_time)

    def _feed_batch(self, packets: List[CapturedPacket]) -> None:
        """Dispatch one block of packets (the vectorized capture path).

        The caller (:meth:`feed`) guarantees no fault injector is armed
        and no buffered packet is lineage-sampled, and cuts blocks at
        heartbeat crossings -- so per-node packet order, RNG draw order,
        and counter arithmetic are exactly the scalar path's.
        """
        stream_time = self._stream_time
        total_bytes = 0
        for packet in packets:
            total_bytes += packet.caplen
            if packet.timestamp > stream_time:
                stream_time = packet.timestamp
        self.packets_fed += len(packets)
        self.bytes_fed += total_bytes
        self._stream_time = stream_time
        self.batches_fed += 1
        if self.supervisor is not None:
            self.supervisor.journal_packets(packets)
        # Split into per-interface runs, preserving arrival order within
        # each; an "any" consumer sees every packet, so it gets the whole
        # block (its global arrival order) in one call.
        runs: Dict[str, List[CapturedPacket]] = {}
        run_views: Dict[str, Optional[List[Optional[PacketView]]]] = {}
        share_flags: Dict[str, bool] = {}
        any_entries = self._plan_for("any")[1]
        full_views: Optional[List[Optional[PacketView]]] = (
            [] if any(wants for _, _, wants in any_entries) else None)
        for packet in packets:
            interface = packet.interface
            share = share_flags.get(interface)
            if share is None:
                share_flags[interface] = share = self._plan_for(interface)[2]
                runs[interface] = []
                run_views[interface] = [] if share else None
            view = PacketView(packet) if share else None
            runs[interface].append(packet)
            aligned = run_views[interface]
            if aligned is not None:
                aligned.append(view)
            if full_views is not None:
                full_views.append(view)
        for interface, run in runs.items():
            if interface == "any":
                # Covered by the full-block any-consumer dispatch below.
                continue
            entries = self._plan_for(interface)[1]
            views = run_views[interface]
            self._dispatch_run(entries, run, views)
        if any_entries:
            self._dispatch_run(any_entries, packets, full_views)

    def _dispatch_run(self, entries, packets, views) -> None:
        """One ordered packet run to one interface's consumers."""
        for node, accept_batch, wants_view in entries:
            if node.quarantined is not None:
                continue
            try:
                if accept_batch is not None:
                    accept_batch(packets, views if wants_view else None)
                elif wants_view and views is not None:
                    accept = node.accept_packet
                    for packet, view in zip(packets, views):
                        accept(packet, view)
                else:
                    accept = node.accept_packet
                    for packet in packets:
                        accept(packet)
            except Exception as error:
                # Containment keeps the rest of the block intact for
                # sibling consumers (each entry gets its own dispatch of
                # the same immutable run); a recovered node already
                # re-processed the whole journaled block, tail included.
                self._contain(node, error)

    def feed(self, packets: Iterable[CapturedPacket], pump_every: int = 256) -> None:
        """Feed a packet iterable, pumping HFTAs periodically.

        With ``batch_size > 1`` packets move in blocks through
        :meth:`_feed_batch`; blocks are cut at heartbeat crossings and
        pump boundaries so heartbeats, pump cycles (and therefore
        controller/fault windows) fire after exactly the same packet as
        scalar execution.  Armed faults force the scalar path (their
        hooks wrap the per-packet entry points); a lineage-sampled
        packet is fed scalar after flushing the pending block.
        """
        batch_size = self.batch_size
        if batch_size <= 1 or self.faults:
            count = 0
            for packet in packets:
                self.feed_packet(packet)
                count += 1
                if count % pump_every == 0:
                    self.pump()
            self.pump()
            return
        if not self._started:
            raise RegistryError("RTS not started; call start() first")
        tracer = self.tracer
        interval = self.heartbeat_interval
        buffer: List[CapturedPacket] = []
        count = 0
        stream_time = self._stream_time
        threshold = (self._last_heartbeat + interval
                     if interval is not None else math.inf)
        for packet in packets:
            count += 1
            if tracer is not None and tracer.wants(packet) is not None:
                if buffer:
                    self._feed_batch(buffer)
                    buffer = []
                self.feed_packet(packet)  # scalar: tags/propagates the trace
                stream_time = self._stream_time
                if interval is not None:
                    threshold = self._last_heartbeat + interval
                if count % pump_every == 0:
                    self.pump()
                continue
            buffer.append(packet)
            if packet.timestamp > stream_time:
                stream_time = packet.timestamp
            crossed = stream_time >= threshold
            if crossed or len(buffer) >= batch_size or count % pump_every == 0:
                self._feed_batch(buffer)
                buffer = []
                if crossed:
                    self._send_heartbeats(self._stream_time)
                    threshold = self._last_heartbeat + interval
                if count % pump_every == 0:
                    self.pump()
        if buffer:
            self._feed_batch(buffer)
            if interval is not None and stream_time >= threshold:
                self._send_heartbeats(self._stream_time)
        self.pump()

    def advance_time(self, stream_time: float) -> None:
        """Declare stream time without a packet (quiet period)."""
        if stream_time > self._stream_time:
            self._stream_time = stream_time
        self._send_heartbeats(self._stream_time)
        self.pump()

    # -- heartbeats --------------------------------------------------------------------
    def _send_heartbeats(self, stream_time: float) -> None:
        for fault in self.faults:
            if fault.silences_heartbeat(stream_time):
                # The token is withheld but _last_heartbeat is not
                # advanced, so the first beat after the silence window
                # catches blocked operators up immediately.
                self.heartbeats_suppressed += 1
                return
        self._last_heartbeat = stream_time
        self.heartbeats_sent += 1
        if self.supervisor is not None:
            self.supervisor.journal_heartbeat(stream_time)
        for node in list(self._all_consumers):
            # A supervisor-suspended node stays in _all_consumers but
            # must not see live heartbeats: it catches up from the
            # journal when it resumes.
            if node.quarantined is not None:
                continue
            on_heartbeat = getattr(node, "on_heartbeat", None)
            if on_heartbeat is not None:
                try:
                    on_heartbeat(stream_time)
                except Exception as error:
                    self._contain(node, error)

    def heartbeat_requested(self, node: QueryNode) -> None:
        """An operator suspects it is blocked: serve a token at next pump."""
        if self.on_demand_heartbeats:
            self._heartbeat_wanted = True

    # -- scheduling -----------------------------------------------------------------------
    def pump(self) -> int:
        """Drain HFTA input channels until quiescent; returns items processed."""
        # Windowed fault injectors activate/deactivate on the virtual
        # clock, then the overload control plane samples pressure
        # *before* draining, when channel depths reflect the backlog
        # this cycle built up.
        for fault in self.faults:
            fault.on_cycle(self._stream_time, self)
        if self.controller is not None:
            self.controller.on_cycle(self._stream_time)
        telemetry = self.telemetry
        if telemetry is not None:
            # Telemetry samples the engine *before* the drain so the
            # emitted _gs_* rows travel through (journaled) channels
            # this same cycle, exactly like alert epoch ticks below --
            # which is what makes the streams replay byte-identically.
            telemetry.on_cycle(self._stream_time)
        if self.alert_engine is not None:
            # The epoch clock ticks at pump boundaries in virtual time;
            # ticks travel through (journaled) channels so the drain
            # below delivers them like any other stream item.
            self.alert_engine.on_cycle(self._stream_time)
        supervisor = self.supervisor
        if supervisor is not None:
            # Retry suspended nodes whose backoff expired (virtual time).
            supervisor.on_pump_begin(self._stream_time)
        tracer = self.tracer
        # The sampling wall-clock profiler brackets each operator's
        # share of the drain; it decides per cycle whether to time.
        profiler = telemetry.profiler if telemetry is not None else None
        if profiler is not None and not profiler.begin_cycle():
            profiler = None
        # The batched drain needs per-item tracer lookups disabled and
        # must not bypass a fault injector's per-tuple wraps, so either
        # one forces the scalar drain.
        if self.batch_size > 1 and tracer is None and not self.faults:
            processed = self._pump_batched(profiler)
            if supervisor is not None:
                supervisor.on_pump_end(self._stream_time)
            if self.replicator is not None:
                # The same quiescent boundary the supervisor checkpoints
                # at is where replication frames are cut.
                self.replicator.on_pump_end(self._stream_time)
            return processed
        processed = 0
        while True:
            if self._heartbeat_wanted:
                self._heartbeat_wanted = False
                if not math.isinf(self._stream_time):
                    self._send_heartbeats(self._stream_time)
            progress = False
            # _quarantine edits _hfta_order, so iterate a snapshot.
            for node in list(self._hfta_order):
                if node.quarantined is not None:
                    continue
                drain_began = perf_counter() if profiler is not None else 0.0
                for input_index, channel in enumerate(node.inputs):
                    while channel:
                        item = channel.pop()
                        if supervisor is not None:
                            supervisor.journal_item(node, item, input_index)
                        if tracer is not None:
                            trace = tracer.lookup(item)
                            if trace is not None:
                                # A node with no output channels is a
                                # terminal consumer: a sink.
                                tracer.event(
                                    trace,
                                    "hfta" if node.subscribers else "sink",
                                    node.name, self._stream_time)
                            tracer.current = trace
                        try:
                            node.dispatch(item, input_index)
                        except Exception as error:
                            # A failing node is contained -- recovered by
                            # the supervisor, or quarantined (counted,
                            # detached, downstream flushed) -- instead of
                            # unwinding pump() and starving its siblings.
                            if not self._contain(node, error):
                                break
                            if node.quarantined is not None:
                                break  # suspended: resumes after backoff
                        processed += 1
                        progress = True
                    if node.quarantined is not None:
                        break
                if profiler is not None:
                    # Closed even when the node was quarantined or
                    # suspended mid-drain: cost up to the failure is
                    # still attributed, never dangling.
                    profiler.add(node.name, perf_counter() - drain_began)
            if not progress and not self._heartbeat_wanted:
                break
        if tracer is not None:
            tracer.current = None
        if self._pump_cycle_hist is not None and processed:
            self._pump_cycle_hist.observe(
                processed * self.cost_model.hfta_tuple_us)
        if supervisor is not None:
            # The pump boundary is the crash-consistent cut point: every
            # channel is quiescent here, so operator state alone
            # describes the computation.
            supervisor.on_pump_end(self._stream_time)
        if self.replicator is not None:
            self.replicator.on_pump_end(self._stream_time)
        return processed

    def _pump_batched(self, profiler=None) -> int:
        """The scalar drain loop moving items in blocks (DESIGN sec 10).

        Per-channel FIFO order is preserved exactly: a popped block is
        split into runs of data tuples (handed to ``dispatch_batch`` on
        operators declaring ``accepts_batch``) with control tokens
        dispatched singly at their original positions.  Only called
        with no tracer and no armed faults (see :meth:`pump`).
        """
        supervisor = self.supervisor
        processed = 0
        while True:
            if self._heartbeat_wanted:
                self._heartbeat_wanted = False
                if not math.isinf(self._stream_time):
                    self._send_heartbeats(self._stream_time)
            progress = False
            # _quarantine edits _hfta_order, so iterate a snapshot.
            for node in list(self._hfta_order):
                if node.quarantined is not None:
                    continue
                batched = node.accepts_batch
                drain_began = perf_counter() if profiler is not None else 0.0
                for input_index, channel in enumerate(node.inputs):
                    while channel:
                        items = channel.pop_many()
                        if supervisor is not None:
                            supervisor.journal_items(node, items, input_index)
                        try:
                            if batched:
                                dispatch_batch = node.dispatch_batch
                                run: List[tuple] = []
                                for item in items:
                                    if type(item) is tuple:
                                        run.append(item)
                                    else:
                                        if run:
                                            dispatch_batch(run, input_index)
                                            run = []
                                        node.dispatch(item, input_index)
                                if run:
                                    dispatch_batch(run, input_index)
                            else:
                                dispatch = node.dispatch
                                for item in items:
                                    dispatch(item, input_index)
                        except Exception as error:
                            # Same containment as the scalar drain; on
                            # recovery the whole journaled block (tail
                            # included) was replayed, on quarantine or
                            # suspension the rest of the popped block
                            # waits in the journal / dies with the node.
                            if not self._contain(node, error):
                                break
                            if node.quarantined is not None:
                                break  # suspended: resumes after backoff
                        processed += len(items)
                        progress = True
                    if node.quarantined is not None:
                        break
                if profiler is not None:
                    profiler.add(node.name, perf_counter() - drain_began)
            if not progress and not self._heartbeat_wanted:
                break
        if self._pump_cycle_hist is not None and processed:
            self._pump_cycle_hist.observe(
                processed * self.cost_model.hfta_tuple_us)
        return processed

    # -- shard-worker checkpoint support (DESIGN section 15) -----------------
    def counters_state(self) -> Dict[str, Any]:
        """The RTS-level counters a shard worker's GSCK snapshot carries.

        Node state alone does not describe a worker engine: the stream
        clock and heartbeat threshold decide when future heartbeats
        fire, and the feed counters must survive a restore for the
        regenerated run to count like the uninterrupted one.
        """
        return {
            "stream_time": self._stream_time,
            "last_heartbeat": self._last_heartbeat,
            "packets_fed": self.packets_fed,
            "bytes_fed": self.bytes_fed,
            "batches_fed": self.batches_fed,
            "heartbeats_sent": self.heartbeats_sent,
        }

    def restore_counters(self, state: Dict[str, Any]) -> None:
        """Reset the RTS-level counters from :meth:`counters_state`."""
        self._stream_time = state["stream_time"]
        self._last_heartbeat = state["last_heartbeat"]
        self.packets_fed = state["packets_fed"]
        self.bytes_fed = state["bytes_fed"]
        self.batches_fed = state["batches_fed"]
        self.heartbeats_sent = state["heartbeats_sent"]

    # -- end of stream -------------------------------------------------------------------------
    def flush_all(self) -> None:
        """End every stream: flush packet consumers, propagate FLUSH, pump.

        A node that fails *while flushing* is quarantined like any
        other failure (its downstream still receives FLUSH), so one bad
        operator cannot abort teardown for the rest.  Flush events are
        not journaled, so the supervisor first forces every pending
        retry (a node must not end the run suspended), and flush-time
        crashes keep permanent quarantine semantics.
        """
        if self.supervisor is not None:
            self.supervisor.finalize()
        for node in list(self._all_consumers):
            if not node.flushed and node.quarantined is None:
                node.flushed = True
                try:
                    node.flush()
                except Exception as error:
                    self._quarantine(node, error)
                else:
                    node.emit_flush()
        if self.telemetry is not None:
            # Final sample + FLUSH on the _gs_* streams, so meta-query
            # subscribers terminate like any packet-stream subscriber.
            self.telemetry.on_stream_end(self._stream_time)
        self.pump()

    # -- introspection ----------------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-node statistics; per-channel overflow accounting (exactly
        the losses the overload control plane watches) nests under each
        producing node.  Built on the canonical obs-layer snapshot, the
        same source the metrics exposition and ``engine_report`` use."""
        return engine_snapshot(self)
