"""The query-node API.

Query nodes are the units the stream manager schedules.  Generated
query code and user-written operators implement the same interface --
"Users can write their own query nodes to implement special operators
by following this API" (the paper's example is an IP defragmentation
operator; see :mod:`repro.operators.defrag`).

A node has a name, an output :class:`StreamSchema`, and a set of
subscriber channels.  Stream items are plain tuples; control items are
:class:`Punctuation` and :class:`FlushToken`.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.core.channels import Channel
from repro.core.heartbeat import FLUSH, FlushToken, Punctuation
from repro.gsql.schema import StreamSchema


class NodeStats:
    __slots__ = ("tuples_in", "tuples_out", "punctuations_in",
                 "punctuations_out", "discarded")

    def __init__(self) -> None:
        self.tuples_in = 0
        self.tuples_out = 0
        self.punctuations_in = 0
        self.punctuations_out = 0
        self.discarded = 0  # dropped by predicates / partial functions

    def __repr__(self) -> str:
        return (f"NodeStats(tuples_in={self.tuples_in}, "
                f"tuples_out={self.tuples_out}, "
                f"punctuations_in={self.punctuations_in}, "
                f"punctuations_out={self.punctuations_out}, "
                f"discarded={self.discarded})")


class QueryNode:
    """Base class for every operator the stream manager runs."""

    #: True for operators whose :meth:`on_tuple_batch` is worth calling
    #: with a block of tuples (the batched data path, DESIGN section 10).
    #: Operators that leave it False are fed one item at a time.
    accepts_batch = False

    def __init__(self, name: str, output_schema: StreamSchema) -> None:
        self.name = name
        self.output_schema = output_schema
        self.subscribers: List[Channel] = []
        self.inputs: List[Channel] = []
        #: (producer, channel) pairs behind ``inputs``, for detaching
        self.input_links: List[tuple] = []
        self.stats = NodeStats()
        self.manager = None  # set by the stream manager at registration
        self.flushed = False
        #: error string once the RTS has contained a failure here, else None
        self.quarantined: Optional[str] = None

    # -- output side ----------------------------------------------------
    def subscribe(self, capacity: Optional[int] = None, name: str = "") -> Channel:
        """Open a new output channel; the caller owns the consumer side."""
        channel = Channel(capacity=capacity, name=name or f"{self.name}->?")
        self.subscribers.append(channel)
        return channel

    def emit(self, row: tuple) -> None:
        self.stats.tuples_out += 1
        manager = self.manager
        if manager is not None and manager.tracer is not None:
            # Sampled lineage (repro.obs.tracing): a tuple emitted while
            # a traced item is being processed belongs to that trace and
            # is tagged so channel crossings can be followed.
            trace = manager.tracer.current
            if trace is not None:
                manager.tracer.tag(row, trace)
                manager.tracer.event(trace, "emit", self.name,
                                     manager.stream_time)
        for channel in self.subscribers:
            channel.push(row)

    def emit_many(self, rows: Sequence[tuple]) -> None:
        """Emit a block of output tuples (the batched fast path).

        Only called from batch paths, which the RTS disables while a
        lineage trace is in flight -- so unlike :meth:`emit` there is
        no tracer tagging here.
        """
        if not rows:
            return
        self.stats.tuples_out += len(rows)
        for channel in self.subscribers:
            channel.push_many(rows)

    def emit_punctuation(self, punctuation: Punctuation) -> None:
        if not punctuation:
            return
        self.stats.punctuations_out += 1
        for channel in self.subscribers:
            channel.push(punctuation)

    def emit_flush(self) -> None:
        for channel in self.subscribers:
            channel.push(FLUSH)

    # -- input side (HFTA-style nodes) ------------------------------------
    def attach_input(self, channel: Channel) -> int:
        """Register an input channel; returns its input index."""
        self.inputs.append(channel)
        return len(self.inputs) - 1

    def dispatch(self, item: Any, input_index: int) -> None:
        """Route one channel item to the right handler."""
        if type(item) is tuple:
            self.stats.tuples_in += 1
            self.on_tuple(item, input_index)
        elif isinstance(item, Punctuation):
            self.stats.punctuations_in += 1
            self.on_punctuation(item, input_index)
        elif isinstance(item, FlushToken):
            self.on_flush(input_index)
        else:
            raise TypeError(f"{self.name}: unknown stream item {item!r}")

    def dispatch_batch(self, rows: List[tuple], input_index: int) -> None:
        """Route a block of *data tuples* to the batch handler.

        The scheduler only calls this on nodes with ``accepts_batch``
        and only with runs of plain tuples (control items are always
        dispatched singly, in stream order).
        """
        self.stats.tuples_in += len(rows)
        self.on_tuple_batch(rows, input_index)

    # -- handlers to override ------------------------------------------------
    def on_tuple(self, row: tuple, input_index: int) -> None:
        raise NotImplementedError

    def on_tuple_batch(self, rows: List[tuple], input_index: int) -> None:
        """Process a run of tuples; default loops :meth:`on_tuple`.

        Overrides must preserve scalar semantics exactly: same outputs
        in the same order, same statistics (the differential harness in
        tests/test_batch_differential.py holds them to it).
        """
        on_tuple = self.on_tuple
        for row in rows:
            on_tuple(row, input_index)

    def on_punctuation(self, punctuation: Punctuation, input_index: int) -> None:
        """Default: consume silently (operators override to unblock)."""

    def on_flush(self, input_index: int) -> None:
        """Default: first flush from any input flushes the node."""
        if not self.flushed:
            self.flushed = True
            self.flush()
            self.emit_flush()

    def flush(self) -> None:
        """Emit any remaining state (end of stream)."""

    # -- checkpoint/restore (DESIGN section 11) -------------------------------
    def snapshot_state(self) -> dict:
        """The node's mutable state as a tree of snapshot primitives.

        Stateful operators override this (and :meth:`restore_state`),
        call ``super()``, and add their own fields.  Callers must
        encode the result (``repro.recovery.wire.encode_snapshot``)
        before the node runs again: the tree may alias live mutable
        state, and the encoded bytes are what isolate the checkpoint
        from later mutation.
        """
        stats = self.stats
        return {
            "stats": (stats.tuples_in, stats.tuples_out,
                      stats.punctuations_in, stats.punctuations_out,
                      stats.discarded),
            "flushed": self.flushed,
        }

    def restore_state(self, state: dict) -> None:
        """Reset the node to a state produced by :meth:`snapshot_state`."""
        stats = self.stats
        (stats.tuples_in, stats.tuples_out, stats.punctuations_in,
         stats.punctuations_out, stats.discarded) = state["stats"]
        self.flushed = state["flushed"]

    def recovery_marks(self) -> dict:
        """Output counters the supervisor uses to size emit suppression."""
        return {
            "tuples_out": self.stats.tuples_out,
            "punctuations_out": self.stats.punctuations_out,
        }

    def begin_replay(self, crash_marks: dict) -> None:
        """Hook called after restore, before journal replay.

        ``crash_marks`` is :meth:`recovery_marks` captured at the moment
        of the crash.  Sinks use it to suppress re-writing rows that
        already reached the output (exactly-once re-emission).
        """

    # -- blocked-operator support ----------------------------------------------
    def request_heartbeat(self) -> None:
        """Ask the manager for an on-demand ordering-update token."""
        if self.manager is not None:
            self.manager.heartbeat_requested(self)


class UserNode(QueryNode):
    """Convenience base class for user-written operators.

    Subclasses override :meth:`on_tuple` (and optionally
    :meth:`on_punctuation` / :meth:`flush`) and call :meth:`emit`.
    Register with :meth:`repro.core.engine.Gigascope.add_node`.
    """
