"""The query-node API.

Query nodes are the units the stream manager schedules.  Generated
query code and user-written operators implement the same interface --
"Users can write their own query nodes to implement special operators
by following this API" (the paper's example is an IP defragmentation
operator; see :mod:`repro.operators.defrag`).

A node has a name, an output :class:`StreamSchema`, and a set of
subscriber channels.  Stream items are plain tuples; control items are
:class:`Punctuation` and :class:`FlushToken`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.channels import Channel
from repro.core.heartbeat import FLUSH, FlushToken, Punctuation
from repro.gsql.schema import StreamSchema


@dataclass
class NodeStats:
    tuples_in: int = 0
    tuples_out: int = 0
    punctuations_in: int = 0
    punctuations_out: int = 0
    discarded: int = 0  # dropped by predicates / partial functions


class QueryNode:
    """Base class for every operator the stream manager runs."""

    def __init__(self, name: str, output_schema: StreamSchema) -> None:
        self.name = name
        self.output_schema = output_schema
        self.subscribers: List[Channel] = []
        self.inputs: List[Channel] = []
        #: (producer, channel) pairs behind ``inputs``, for detaching
        self.input_links: List[tuple] = []
        self.stats = NodeStats()
        self.manager = None  # set by the stream manager at registration
        self.flushed = False
        #: error string once the RTS has contained a failure here, else None
        self.quarantined: Optional[str] = None

    # -- output side ----------------------------------------------------
    def subscribe(self, capacity: Optional[int] = None, name: str = "") -> Channel:
        """Open a new output channel; the caller owns the consumer side."""
        channel = Channel(capacity=capacity, name=name or f"{self.name}->?")
        self.subscribers.append(channel)
        return channel

    def emit(self, row: tuple) -> None:
        self.stats.tuples_out += 1
        manager = self.manager
        if manager is not None and manager.tracer is not None:
            # Sampled lineage (repro.obs.tracing): a tuple emitted while
            # a traced item is being processed belongs to that trace and
            # is tagged so channel crossings can be followed.
            trace = manager.tracer.current
            if trace is not None:
                manager.tracer.tag(row, trace)
                manager.tracer.event(trace, "emit", self.name,
                                     manager.stream_time)
        for channel in self.subscribers:
            channel.push(row)

    def emit_punctuation(self, punctuation: Punctuation) -> None:
        if not punctuation:
            return
        self.stats.punctuations_out += 1
        for channel in self.subscribers:
            channel.push(punctuation)

    def emit_flush(self) -> None:
        for channel in self.subscribers:
            channel.push(FLUSH)

    # -- input side (HFTA-style nodes) ------------------------------------
    def attach_input(self, channel: Channel) -> int:
        """Register an input channel; returns its input index."""
        self.inputs.append(channel)
        return len(self.inputs) - 1

    def dispatch(self, item: Any, input_index: int) -> None:
        """Route one channel item to the right handler."""
        if type(item) is tuple:
            self.stats.tuples_in += 1
            self.on_tuple(item, input_index)
        elif isinstance(item, Punctuation):
            self.stats.punctuations_in += 1
            self.on_punctuation(item, input_index)
        elif isinstance(item, FlushToken):
            self.on_flush(input_index)
        else:
            raise TypeError(f"{self.name}: unknown stream item {item!r}")

    # -- handlers to override ------------------------------------------------
    def on_tuple(self, row: tuple, input_index: int) -> None:
        raise NotImplementedError

    def on_punctuation(self, punctuation: Punctuation, input_index: int) -> None:
        """Default: consume silently (operators override to unblock)."""

    def on_flush(self, input_index: int) -> None:
        """Default: first flush from any input flushes the node."""
        if not self.flushed:
            self.flushed = True
            self.flush()
            self.emit_flush()

    def flush(self) -> None:
        """Emit any remaining state (end of stream)."""

    # -- blocked-operator support ----------------------------------------------
    def request_heartbeat(self) -> None:
        """Ask the manager for an on-demand ordering-update token."""
        if self.manager is not None:
            self.manager.heartbeat_requested(self)


class UserNode(QueryNode):
    """Convenience base class for user-written operators.

    Subclasses override :meth:`on_tuple` (and optionally
    :meth:`on_punctuation` / :meth:`flush`) and call :meth:`emit`.
    Register with :meth:`repro.core.engine.Gigascope.add_node`.
    """
