"""Ordering-update tokens: how GSQL unblocks merge, join, and aggregation.

"The problem is that the presence of a tuple allows us to advance the
window over which a query operates, but we do not get this information
in the absence of a tuple."  Following Tucker & Maier's punctuation
semantics (the paper's [7]) and the Gigascope heartbeat follow-up work,
the RTS injects :class:`Punctuation` tokens carrying lower bounds on
ordered attributes; operators use them to advance windows, flush closed
groups, and purge join buffers even when a stream goes quiet.

Tokens are generated two ways, both implemented by the stream manager:

* **periodically** -- every ``heartbeat_interval`` seconds of stream time;
* **on demand** -- when an operator detects it might be blocked (its
  buffers exceed a threshold) it asks the manager for a heartbeat.

A distinct :class:`FlushToken` marks end-of-stream: operators emit all
remaining state and forward it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class Punctuation:
    """Lower bounds on ordered attributes of a stream.

    ``bounds`` maps a tuple slot index to a value ``b`` with the meaning:
    every future tuple ``t`` of this stream satisfies ``t[slot] >= b``.
    """

    bounds: Dict[int, float] = field(default_factory=dict)

    def bound_for(self, slot: int):
        """The lower bound for ``slot``, or None if not covered."""
        return self.bounds.get(slot)

    def merged_with(self, other: "Punctuation") -> "Punctuation":
        """Pointwise max: both tokens' promises hold."""
        bounds = dict(self.bounds)
        for slot, value in other.bounds.items():
            if slot not in bounds or value > bounds[slot]:
                bounds[slot] = value
        return Punctuation(bounds)

    def __bool__(self) -> bool:
        return bool(self.bounds)


class FlushToken:
    """End-of-stream marker: flush all state downstream."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "FLUSH"


FLUSH = FlushToken()
