"""Gigascope run-time system: stream manager, query nodes, channels.

* :mod:`repro.core.heartbeat` -- ordering-update tokens (punctuation)
  and the end-of-stream flush token
* :mod:`repro.core.channels` -- bounded ring-buffer channels (the
  stand-in for the paper's shared-memory transport)
* :mod:`repro.core.query_node` -- the query-node API; user-written
  operators implement it too
* :mod:`repro.core.stream_manager` -- the registry + scheduler
* :mod:`repro.core.params` -- on-the-fly query parameters
* :mod:`repro.core.engine` -- the :class:`Gigascope` facade
"""

from repro.core.heartbeat import Punctuation, FlushToken, FLUSH
from repro.core.channels import Channel, ChannelStats
from repro.core.query_node import QueryNode, UserNode
from repro.core.stream_manager import RuntimeSystem, Subscription, RegistryError
from repro.core.engine import Gigascope

__all__ = [
    "Punctuation",
    "FlushToken",
    "FLUSH",
    "Channel",
    "ChannelStats",
    "QueryNode",
    "UserNode",
    "RuntimeSystem",
    "Subscription",
    "RegistryError",
    "Gigascope",
]
