"""The :class:`Gigascope` facade: the public API of the reproduction.

Typical use::

    from repro import Gigascope

    gs = Gigascope()
    gs.add_query('''
        DEFINE query_name tcpdest0;
        Select destIP, destPort, time
        From eth0.tcp
        Where ipversion = 4 and protocol = 6
    ''')
    sub = gs.subscribe("tcpdest0")
    gs.start()
    gs.feed(packets)           # CapturedPacket iterable (pcap, generator, NIC sim)
    gs.flush()
    rows = sub.poll()

Queries whose plan contains an LFTA must be added before :meth:`start`
(the LFTA batch restriction of Section 3); HFTA-only queries -- those
reading other queries' streams -- can be added at any time.
"""

from __future__ import annotations

import itertools
import os
from typing import Any, Dict, Iterable, List, Optional

from repro.core.params import QueryInstance
from repro.core.query_node import QueryNode
from repro.core.stream_manager import (
    DEFAULT_BATCH_SIZE,
    RegistryError,
    RuntimeSystem,
    Subscription,
)


def resolve_batch_size(batch_size: Optional[int] = None) -> int:
    """The effective packet batch size (DESIGN section 10).

    Explicit argument wins; otherwise ``GS_BATCH=0`` disables batching
    (pure scalar execution, the differential-test switch) and
    ``GS_BATCH_SIZE`` overrides the default block size.  A malformed or
    non-positive ``GS_BATCH_SIZE`` raises ``ValueError`` -- silently
    falling back to the default would run a different execution path
    than the operator asked for (the CLI turns this into a usage error).
    """
    if batch_size is not None:
        return batch_size
    if os.environ.get("GS_BATCH", "1") in ("0", "false", "no"):
        return 1
    raw = os.environ.get("GS_BATCH_SIZE")
    if raw is None:
        return DEFAULT_BATCH_SIZE
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"GS_BATCH_SIZE must be a positive integer, got {raw!r}"
        ) from None
    if value <= 0:
        raise ValueError(f"GS_BATCH_SIZE must be >= 1, got {raw!r}")
    return value


def resolve_columnar(columnar: Optional[bool] = None) -> bool:
    """Whether LFTAs may use columnar block execution (DESIGN section 14).

    Explicit argument wins; ``GS_COLUMNAR=0`` (or ``false``/``no``)
    forces the row-based batch path -- the columnar differential-test
    switch.  Default on.
    """
    if columnar is not None:
        return bool(columnar)
    return os.environ.get("GS_COLUMNAR", "1") not in ("0", "false", "no")


def resolve_shards(shards: Optional[int] = None) -> int:
    """How many worker processes to shard across (DESIGN section 15).

    Explicit argument wins; otherwise ``GS_SHARDS`` selects the sharded
    runtime (``repro.shard``), and the default ``0`` means single-
    process.  Malformed or negative values raise ``ValueError`` for the
    same reason as :func:`resolve_batch_size`: a typo must not silently
    run a different runtime than the operator asked for.
    """
    if shards is not None:
        return shards
    raw = os.environ.get("GS_SHARDS")
    if raw is None:
        return 0
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"GS_SHARDS must be a non-negative integer, got {raw!r}"
        ) from None
    if value < 0:
        raise ValueError(f"GS_SHARDS must be >= 0, got {raw!r}")
    return value
from repro.gsql.codegen import ExprCompiler
from repro.gsql.functions import FunctionRegistry, FunctionSpec, builtin_functions
from repro.gsql.parser import parse_queries, parse_query
from repro.gsql.planner import QueryPlan, plan_query
from repro.gsql.schema import (
    ProtocolSchema,
    SchemaRegistry,
    StreamSchema,
    builtin_registry,
    parse_ddl,
)
from repro.gsql.semantic import analyze
from repro.net.packet import CapturedPacket
from repro.operators.aggregation import AggregationNode
from repro.operators.join import JoinNode
from repro.operators.lfta import LftaNode
from repro.operators.merge import MergeNode
from repro.operators.selection import SelectionNode


class Gigascope:
    """A complete Gigascope instance: schemas, functions, queries, RTS."""

    def __init__(
        self,
        mode: str = "compiled",
        heartbeat_interval: Optional[float] = 1.0,
        on_demand_heartbeats: bool = True,
        default_interface: str = "eth0",
        lfta_table_size: int = 4096,
        merge_buffer_capacity: Optional[int] = None,
        channel_capacity: Optional[int] = None,
        schema_registry: Optional[SchemaRegistry] = None,
        functions: Optional[FunctionRegistry] = None,
        metrics: bool = True,
        seed: int = 0,
        batch_size: Optional[int] = None,
        columnar: Optional[bool] = None,
    ) -> None:
        self.mode = mode
        #: root of the seeded RNG registry (repro.determinism): every
        #: data-path consumer of randomness (DEFINE-sample gates, shed
        #: gates) derives its own named stream from this, so a run
        #: replays exactly for a given (queries, packets, seed) triple
        self.seed = seed
        self.default_interface = default_interface
        self.lfta_table_size = lfta_table_size
        self.merge_buffer_capacity = merge_buffer_capacity
        #: bound on inter-node channels; overflow drops tuples (and is
        #: what the overload control plane watches and reacts to)
        self.channel_capacity = channel_capacity
        self.schema_registry = schema_registry or builtin_registry()
        self.functions = functions or builtin_functions()
        #: columnar block execution for eligible LFTAs (DESIGN section
        #: 14); GS_COLUMNAR=0 forces the row-based batch path
        self.columnar = resolve_columnar(columnar)
        self.rts = RuntimeSystem(heartbeat_interval=heartbeat_interval,
                                 on_demand_heartbeats=on_demand_heartbeats,
                                 metrics=metrics,
                                 batch_size=resolve_batch_size(batch_size))
        self._streams: Dict[str, StreamSchema] = {}
        self._instances: Dict[str, QueryInstance] = {}
        self._observed_nics: List = []
        self._anonymous = itertools.count()

    # -- schema & function extension points ---------------------------------
    def add_protocol(self, schema: ProtocolSchema) -> None:
        """Register a new Protocol (packet interpretation schema)."""
        self.schema_registry.add(schema)

    def define_protocols(self, ddl_text: str) -> List[str]:
        """Run DDL text; returns the names of the protocols defined."""
        schemas = parse_ddl(ddl_text)
        for schema in schemas:
            self.schema_registry.add(schema)
        return [schema.name for schema in schemas]

    def register_function(self, spec: FunctionSpec) -> None:
        """Add a user function to the function registry."""
        self.functions.register(spec)

    # -- queries --------------------------------------------------------------
    def add_query(self, text: str, params: Optional[Dict[str, Any]] = None,
                  name: Optional[str] = None) -> str:
        """Compile, plan, and instantiate one GSQL query; returns its name."""
        ast = parse_query(text)
        return self._instantiate(ast, params, name)

    def add_queries(self, text: str,
                    params: Optional[Dict[str, Dict[str, Any]]] = None
                    ) -> List[str]:
        """Add a ``;``-separated batch of queries, in order.

        ``params`` maps query names to their parameter dicts.
        """
        names = []
        for ast in parse_queries(text):
            query_params = (params or {}).get(ast.defines.get("query_name"))
            names.append(self._instantiate(ast, query_params, None))
        return names

    def _instantiate(self, ast, params, name) -> str:
        self._lift_subqueries(ast, params, name)
        analyzed = analyze(
            ast,
            self.schema_registry,
            self.functions,
            stream_resolver=self._streams.get,
            default_interface=self.default_interface,
        )
        query_name = name or analyzed.name or f"q{next(self._anonymous)}"
        if query_name in self._instances:
            raise RegistryError(f"query {query_name!r} already exists")
        plan = plan_query(analyzed, self.functions, query_name)
        compiler = ExprCompiler(analyzed, self.functions, params, self.mode)

        nodes: List[QueryNode] = []
        for lfta_plan in plan.lftas:
            lfta = LftaNode(lfta_plan, analyzed, compiler,
                            table_size=self.lfta_table_size, seed=self.seed,
                            columnar=self.columnar)
            self.rts.register_node(lfta, packet_interface=lfta_plan.interface)
            self._streams[lfta.name] = lfta_plan.output_schema
            nodes.append(lfta)

        if plan.hfta is not None:
            hfta_plan = plan.hfta
            if hfta_plan.kind == "selection":
                node: QueryNode = SelectionNode(hfta_plan, analyzed, compiler)
            elif hfta_plan.kind == "aggregation":
                node = AggregationNode(hfta_plan, analyzed, compiler,
                                       seed=self.seed)
            elif hfta_plan.kind == "join":
                node = JoinNode(hfta_plan, analyzed, compiler)
            elif hfta_plan.kind == "merge":
                node = MergeNode(hfta_plan, analyzed,
                                 buffer_capacity=self.merge_buffer_capacity)
            else:
                raise RegistryError(f"unknown HFTA kind {hfta_plan.kind!r}")
            self.rts.register_node(node)
            self.rts.connect(node, hfta_plan.inputs,
                             capacity=self.channel_capacity)
            self._streams[query_name] = plan.output_schema
            nodes.append(node)

        self._instances[query_name] = QueryInstance(
            name=query_name, plan=plan, analyzed=analyzed,
            compiler=compiler, nodes=nodes,
        )
        return query_name

    def _lift_subqueries(self, ast, params, name) -> None:
        """Rewrite FROM-clause subqueries into named queries.

        "GSQL currently supports nested subqueries through this
        [composition] mechanism only, but supporting subqueries in the
        FROM clause requires only an update of the parser" -- here is
        that update: each ``(SELECT ...) alias`` is instantiated as its
        own query, and the outer query reads its stream.
        """
        from repro.gsql.ast_nodes import TableRef
        outer = name or ast.defines.get("query_name") or f"q{next(self._anonymous)}"
        if name is None and "query_name" not in ast.defines:
            ast.defines["query_name"] = outer
        for position, ref in enumerate(ast.sources):
            if ref.subquery is None:
                continue
            sub_ast = ref.subquery
            sub_name = sub_ast.defines.get("query_name") or f"_sub_{outer}_{position}"
            sub_ast.defines["query_name"] = sub_name
            actual = self._instantiate(sub_ast, params, sub_name)
            ast.sources[position] = TableRef(name=actual,
                                             alias=ref.alias or ref.name)

    def add_node(self, node: QueryNode,
                 interface: Optional[str] = None) -> str:
        """Register a user-written query node (packet consumer if bound)."""
        self.rts.register_node(node, packet_interface=interface)
        self._streams[node.name] = node.output_schema
        return node.name

    def remove_query(self, name: str) -> None:
        """Tear down a query and its nodes.

        Other queries reading this one's streams block removal; LFTA-
        bearing queries require a stopped RTS (the batch restriction).
        Application subscriptions to the removed streams simply stop
        receiving.
        """
        instance = self._instances.get(name)
        if instance is None:
            raise RegistryError(f"no query named {name!r}")
        produced = {node.name for node in instance.nodes}
        for other_name, other in self._instances.items():
            if other_name == name or other.plan.hfta is None:
                continue
            used = produced.intersection(other.plan.hfta.inputs)
            if used:
                raise RegistryError(
                    f"query {other_name!r} reads {sorted(used)}; "
                    "remove it first"
                )
        # HFTA before its LFTAs, so no node ever has a dangling reader.
        for node in reversed(instance.nodes):
            self.rts.remove_node(node.name, force=True)
            self._streams.pop(node.name, None)
        self._streams.pop(name, None)
        del self._instances[name]

    # -- overload control (repro.control) -----------------------------------------
    def enable_shedding(self, policy: Any = "adaptive", cost_model=None,
                        nics: Iterable = ()) -> "OverloadController":
        """Switch on the overload control plane.

        ``policy`` is a :class:`~repro.control.shedding.SheddingPolicy`
        or a spec string (``"none"``, ``"static:RATE"``, ``"adaptive"``).
        The controller samples pressure every pump cycle and installs a
        packet-sampling gate on the LFTAs; additive aggregates are scaled
        by 1/rate so COUNT/SUM stay statistically correct.  Pass
        simulated NICs via ``nics`` to include card-side ring drops in
        the pressure signal.
        """
        from repro.control.controller import OverloadController
        controller = OverloadController(self.rts, policy=policy,
                                        cost_model=cost_model)
        for nic in nics:
            controller.watch_nic(nic)
        return controller

    def overload_report(self) -> Dict[str, Any]:
        """End-to-end drop accounting: shed, overflowed, and lost where.

        With shedding enabled this is the controller's full ledger
        (policy state, shed fractions, channel watermarks, utilization);
        without it, a raw snapshot of what overflowed, uncorrected.
        """
        if self.rts.controller is not None:
            return self.rts.controller.report()
        from repro.control.controller import overload_snapshot
        return overload_snapshot(self.rts)

    # -- recovery (repro.recovery) -------------------------------------------
    def enable_recovery(self, checkpoint_interval: float = 1.0,
                        max_restarts: int = 3, backoff_base: float = 0.25,
                        backoff_factor: float = 2.0) -> "RecoverySupervisor":
        """Switch on checkpoint/restore and supervised node recovery.

        The supervisor cuts a crash-consistent snapshot of every
        operator's state each ``checkpoint_interval`` seconds of
        virtual time (at pump boundaries, where channels are
        quiescent), journals inputs between checkpoints, and upgrades
        permanent quarantine into bounded-retry restart: restore the
        last checkpoint, replay the journal gap, suppress re-emission
        of already-delivered rows.  After ``max_restarts`` failed
        attempts (retried with exponential backoff in virtual time) the
        node degrades to the permanent quarantine of
        :meth:`overload_report`'s containment ledger.
        """
        from repro.recovery.supervisor import RecoverySupervisor
        return RecoverySupervisor(
            self.rts,
            checkpoint_interval=checkpoint_interval,
            max_restarts=max_restarts,
            backoff_base=backoff_base,
            backoff_factor=backoff_factor,
        )

    def recovery_report(self) -> Optional[Dict[str, Any]]:
        """The supervisor's ledger (checkpoints, restarts, replay),
        or None when recovery is not enabled."""
        if self.rts.supervisor is None:
            return None
        return self.rts.supervisor.report()

    # -- alerting (repro.alerts) ---------------------------------------------
    def enable_alerts(self, triggers: Iterable[Any] = (),
                      bus_name: str = "alerts") -> "AlertEngine":
        """Switch on the alert evaluation plane (DESIGN section 12).

        ``triggers`` mixes :class:`~repro.alerts.spec.TriggerSpec`
        instances and spec strings
        (``"synflood:on=syn_watch,key=destIP,when=sum(syns) > 1000"``;
        see :func:`repro.alerts.parse_alert_spec`).  Each trigger
        watches one query's output stream and fires typed RAISE/CLEAR
        alerts, unioned onto the ``bus_name`` stream -- subscribe to it
        or attach a sink like any other query output.  More triggers
        can be added later via the returned engine's ``add_trigger``,
        as long as the watched queries exist.
        """
        from repro.alerts.engine import AlertEngine
        if self.rts.alert_engine is not None:
            raise RegistryError("alerts already enabled")
        alert_engine = AlertEngine(self, bus_name=bus_name)
        for trigger in triggers:
            alert_engine.add_trigger(trigger)
        return alert_engine

    def alert_report(self) -> Optional[Dict[str, Any]]:
        """The alert plane's ledger (triggers, raised/cleared/suppressed
        counts), or None when alerting is not enabled."""
        if self.rts.alert_engine is None:
            return None
        return self.rts.alert_engine.report()

    # -- self-telemetry (repro.obs.telemetry) --------------------------------
    def enable_telemetry(self, interval: float = 1.0,
                         streams: Optional[Iterable[str]] = None,
                         profile_every: int = 1) -> "TelemetryHub":
        """Publish engine internals as first-class ``_gs_*`` GSQL streams.

        Registers the typed telemetry streams (``_gs_channel``,
        ``_gs_operator``, ``_gs_shed``, ``_gs_recovery``, ``_gs_alert``,
        or the subset named in ``streams``) in the schema, so GSQL
        queries and alert triggers subscribe to them exactly like packet
        streams.  Samples are cut at pump boundaries every ``interval``
        seconds of virtual time and carry only deterministic values, so
        they replay byte-identically (``replay verify-telemetry``).
        ``profile_every`` sets the sampling pump profiler's period (1 =
        profile every cycle).  Enable *before* adding queries that read
        the ``_gs_*`` streams.
        """
        from repro.obs.telemetry import TelemetryHub
        if self.rts.telemetry is not None:
            raise RegistryError("telemetry already enabled")
        return TelemetryHub(self, interval=interval, streams=streams,
                            profile_every=profile_every)

    def telemetry_report(self) -> Optional[Dict[str, Any]]:
        """The telemetry hub's ledger (samples, per-stream row counts,
        profiler attribution), or None when telemetry is not enabled."""
        if self.rts.telemetry is None:
            return None
        return self.rts.telemetry.report()

    # -- fault injection (repro.faults) --------------------------------------
    def inject_faults(self, faults: Iterable[Any],
                      nics: Iterable = ()) -> List[Any]:
        """Arm fault injectors on the running system.

        ``faults`` mixes :class:`~repro.faults.injectors.FaultInjector`
        instances and spec strings (``"ring_burst:at=0.5,duration=0.2"``;
        see :func:`repro.faults.parse_fault_spec`).  ``nics`` are the
        simulated cards a ring-loss burst should blind; every injector
        keeps a ledger, collected by :meth:`fault_report`.  Arm operator
        faults after the target query has been added.
        """
        from repro.faults import parse_fault_spec
        armed = []
        nics = list(nics)
        for fault in faults:
            if isinstance(fault, str):
                fault = parse_fault_spec(fault, seed=self.seed)
            fault.arm(self.rts, nics=nics)
            armed.append(fault)
        return armed

    def fault_report(self) -> List[Dict[str, Any]]:
        """Every armed injector's ledger (drops, triggers, windows)."""
        from repro.faults.injectors import fault_reports
        return fault_reports(self.rts.faults)

    # -- observability (repro.obs) ------------------------------------------------
    @property
    def metrics(self):
        """The engine's :class:`~repro.obs.registry.MetricsRegistry`
        (None when constructed with ``metrics=False``).  Exposition:
        ``gs.metrics.to_prometheus()`` / ``gs.metrics.to_json()``."""
        return self.rts.metrics

    def enable_tracing(self, sample_rate: float, max_traces: int = 1024):
        """Switch on sampled tuple-lineage tracing.

        A content-deterministic gate stamps roughly ``sample_rate`` of
        packets with a trace id; span events are recorded at every stage
        (NIC -> LFTA -> channel -> HFTA -> sink/app) with virtual-time
        timestamps.  Returns the :class:`~repro.obs.tracing.Tracer`;
        dump with ``tracer.to_json()``.
        """
        from repro.obs.tracing import Tracer
        tracer = Tracer(sample_rate, max_traces=max_traces)
        self.rts.tracer = tracer
        for nic in self._observed_nics:
            nic.tracer = tracer
        return tracer

    def observe_nic(self, nic, name: Optional[str] = None) -> None:
        """Export a simulated NIC's ring/drop statistics as metrics and
        include it in the lineage tracer's span chain (the ``nic`` and
        ``nic_drop`` stages)."""
        label = name or f"nic{len(self._observed_nics)}"
        self._observed_nics.append(nic)
        if self.rts.metrics is not None:
            from repro.obs.collectors import bind_nic
            bind_nic(self.rts.metrics, nic, label)
        nic.tracer = self.rts.tracer

    # -- introspection ------------------------------------------------------------
    def plan_of(self, name: str) -> QueryPlan:
        return self._instances[name].plan

    def explain(self, name: str) -> str:
        """The plan plus its static cost estimate (EXPLAIN-style)."""
        from repro.gsql.costing import estimate_plan_cost
        plan = self._instances[name].plan
        estimate = estimate_plan_cost(plan, self.functions)
        return plan.describe() + "\n" + estimate.describe()

    def schema_of(self, name: str) -> StreamSchema:
        return self._streams[name]

    def stats(self) -> Dict[str, Dict[str, int]]:
        return self.rts.stats()

    def generated_code(self, name: str) -> str:
        """The Python the code generator produced for this query."""
        return "\n".join(self._instances[name].compiler.generated_sources)

    # -- parameters ------------------------------------------------------------------
    def set_param(self, query_name: str, param: str, value: Any) -> None:
        """Change a query parameter on the fly (Section 3)."""
        instance = self._instances[query_name]
        if param not in instance.compiler.params:
            raise RegistryError(
                f"query {query_name!r} has no parameter {param!r}"
            )
        instance.compiler.params[param] = value

    def get_param(self, query_name: str, param: str) -> Any:
        return self._instances[query_name].compiler.params[param]

    # -- run-time delegation -----------------------------------------------------------
    def subscribe(self, name: str, capacity: Optional[int] = None) -> Subscription:
        return self.rts.subscribe(name, capacity=capacity)

    def start(self) -> None:
        self.rts.start()

    def stop(self) -> None:
        self.rts.stop()

    def feed_packet(self, packet: CapturedPacket) -> None:
        self.rts.feed_packet(packet)

    def feed(self, packets: Iterable[CapturedPacket], pump_every: int = 256) -> None:
        self.rts.feed(packets, pump_every=pump_every)

    def pump(self) -> int:
        return self.rts.pump()

    def advance_time(self, stream_time: float) -> None:
        self.rts.advance_time(stream_time)

    def flush(self) -> None:
        """End all streams and drain everything downstream."""
        self.rts.flush_all()
