"""Bounded ring-buffer channels between query nodes.

The paper's query nodes are processes communicating through shared
memory; here they are objects communicating through :class:`Channel`
ring buffers.  The properties that matter to the reproduction are
preserved: bounded capacity, overflow accounting (bursty streams
overflow merge buffers, Section 3), and subscription fan-out.

The batched data path (DESIGN section 10) moves items in blocks:
:meth:`Channel.push_many` / :meth:`Channel.pop_many` amortize the
per-item call overhead while keeping the overflow ledger *per item* --
a batch that straddles the capacity bound drops exactly the same
tuples, and counts them exactly the same way, as a sequence of
single pushes would.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterable, Iterator, List, Optional


class ChannelStats:
    __slots__ = ("pushed", "popped", "dropped", "max_depth", "control_pushed")

    def __init__(self) -> None:
        self.pushed = 0
        self.popped = 0
        self.dropped = 0
        self.max_depth = 0
        #: punctuation/flush tokens pushed; these bypass the capacity bound
        #: (so max_depth may exceed capacity by at most this many items)
        self.control_pushed = 0

    def __repr__(self) -> str:  # keep the dataclass-style repr
        return (f"ChannelStats(pushed={self.pushed}, popped={self.popped}, "
                f"dropped={self.dropped}, max_depth={self.max_depth}, "
                f"control_pushed={self.control_pushed})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChannelStats):
            return NotImplemented
        return all(getattr(self, name) == getattr(other, name)
                   for name in self.__slots__)

    def absorb(self, snapshot: dict) -> None:
        """Fold a remote channel's statistics dict into this ledger.

        The sharded runtime runs :meth:`push_many` inside worker
        processes; their per-item overflow accounting would die with
        the pipe otherwise.  Counters add, ``max_depth`` takes the
        high-water mark (see :func:`repro.obs.collectors.channel_snapshot`
        for the dict shape).
        """
        self.pushed += snapshot.get("pushed", 0)
        self.popped += snapshot.get("popped", 0)
        self.dropped += snapshot.get("dropped", 0)
        self.control_pushed += snapshot.get("control_pushed", 0)
        depth = snapshot.get("max_depth", 0)
        if depth > self.max_depth:
            self.max_depth = depth


class Channel:
    """A FIFO with optional capacity; overflow drops the newest item."""

    __slots__ = ("capacity", "name", "fault_capacity", "_queue", "stats")

    def __init__(self, capacity: Optional[int] = None, name: str = "") -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self.capacity = capacity
        self.name = name
        #: temporary bound installed by a fault injector (channel-overflow
        #: storm); the effective capacity is the tighter of the two
        self.fault_capacity: Optional[int] = None
        self._queue: Deque[Any] = deque()
        self.stats = ChannelStats()

    def _effective_capacity(self) -> Optional[int]:
        capacity = self.capacity
        if self.fault_capacity is not None and (
                capacity is None or self.fault_capacity < capacity):
            capacity = self.fault_capacity
        return capacity

    def push(self, item: Any) -> bool:
        """Append ``item``; returns False (and counts a drop) on overflow.

        Control tokens (punctuation, flush) are never dropped: losing
        one would stall downstream operators forever.
        """
        capacity = self._effective_capacity()
        if (
            capacity is not None
            and len(self._queue) >= capacity
            and type(item) is tuple
        ):
            self.stats.dropped += 1
            return False
        self._queue.append(item)
        self.stats.pushed += 1
        if type(item) is not tuple:
            self.stats.control_pushed += 1
        if len(self._queue) > self.stats.max_depth:
            self.stats.max_depth = len(self._queue)
        return True

    def push_many(self, items: Iterable[Any]) -> int:
        """Append a block of items; returns how many were accepted.

        Per-item semantics are identical to calling :meth:`push` once
        per item -- data tuples beyond the capacity bound are dropped
        and counted individually, control tokens always get through,
        and ``max_depth`` records the same high-water mark (depth grows
        monotonically within a block, so checking once at the end sees
        the same peak a per-push check would).
        """
        stats = self.stats
        queue = self._queue
        if (self.capacity is None and self.fault_capacity is None
                and isinstance(items, (list, tuple))):
            # Fast path: no bound applies and the block is already
            # materialized, so no code runs mid-block that could
            # install one.  A generator input gets the general loop --
            # its body may set ``fault_capacity`` between items (fault
            # injectors do), and per-push semantics must see that.
            queue.extend(items)
            accepted = len(items)
            stats.pushed += accepted
            for item in items:
                if type(item) is not tuple:
                    stats.control_pushed += 1
            if len(queue) > stats.max_depth:
                stats.max_depth = len(queue)
            return accepted
        accepted = 0
        dropped = 0
        control = 0
        effective = self._effective_capacity
        for item in items:
            # Re-read the bound per item, exactly as push() does: a
            # fault injector tightening it mid-block must drop the
            # same suffix a sequence of single pushes would.
            capacity = effective()
            if (capacity is not None and len(queue) >= capacity
                    and type(item) is tuple):
                dropped += 1
                continue
            queue.append(item)
            accepted += 1
            if type(item) is not tuple:
                control += 1
        stats.pushed += accepted
        stats.dropped += dropped
        stats.control_pushed += control
        if len(queue) > stats.max_depth:
            stats.max_depth = len(queue)
        return accepted

    def pop(self) -> Any:
        """Remove and return the oldest item; raises IndexError when empty."""
        item = self._queue.popleft()
        self.stats.popped += 1
        return item

    def pop_many(self, limit: Optional[int] = None) -> List[Any]:
        """Remove and return up to ``limit`` oldest items (all when None)."""
        queue = self._queue
        if limit is None or limit >= len(queue):
            items = list(queue)
            queue.clear()
        else:
            items = [queue.popleft() for _ in range(limit)]
        self.stats.popped += len(items)
        return items

    def peek(self) -> Any:
        return self._queue[0]

    def drain(self) -> List[Any]:
        """Pop everything currently buffered."""
        items = list(self._queue)
        self.stats.popped += len(items)
        self._queue.clear()
        return items

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._queue)


def all_quiescent(channels: Iterable["Channel"]) -> bool:
    """True when no channel holds in-flight items.

    A checkpoint is crash-consistent only if it is cut at a quiescent
    point -- operator state alone describes the computation, with no
    half-delivered items living in channels (DESIGN section 11).  The
    recovery supervisor checks this before cutting a checkpoint at a
    pump boundary.
    """
    return all(not channel for channel in channels)
