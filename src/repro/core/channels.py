"""Bounded ring-buffer channels between query nodes.

The paper's query nodes are processes communicating through shared
memory; here they are objects communicating through :class:`Channel`
ring buffers.  The properties that matter to the reproduction are
preserved: bounded capacity, overflow accounting (bursty streams
overflow merge buffers, Section 3), and subscription fan-out.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Iterator, List, Optional


@dataclass
class ChannelStats:
    pushed: int = 0
    popped: int = 0
    dropped: int = 0
    max_depth: int = 0
    #: punctuation/flush tokens pushed; these bypass the capacity bound
    #: (so max_depth may exceed capacity by at most this many items)
    control_pushed: int = 0


class Channel:
    """A FIFO with optional capacity; overflow drops the newest item."""

    def __init__(self, capacity: Optional[int] = None, name: str = "") -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self.capacity = capacity
        self.name = name
        #: temporary bound installed by a fault injector (channel-overflow
        #: storm); the effective capacity is the tighter of the two
        self.fault_capacity: Optional[int] = None
        self._queue: Deque[Any] = deque()
        self.stats = ChannelStats()

    def push(self, item: Any) -> bool:
        """Append ``item``; returns False (and counts a drop) on overflow.

        Control tokens (punctuation, flush) are never dropped: losing
        one would stall downstream operators forever.
        """
        capacity = self.capacity
        if self.fault_capacity is not None and (
                capacity is None or self.fault_capacity < capacity):
            capacity = self.fault_capacity
        if (
            capacity is not None
            and len(self._queue) >= capacity
            and type(item) is tuple
        ):
            self.stats.dropped += 1
            return False
        self._queue.append(item)
        self.stats.pushed += 1
        if type(item) is not tuple:
            self.stats.control_pushed += 1
        if len(self._queue) > self.stats.max_depth:
            self.stats.max_depth = len(self._queue)
        return True

    def pop(self) -> Any:
        """Remove and return the oldest item; raises IndexError when empty."""
        item = self._queue.popleft()
        self.stats.popped += 1
        return item

    def peek(self) -> Any:
        return self._queue[0]

    def drain(self) -> List[Any]:
        """Pop everything currently buffered."""
        items = list(self._queue)
        self.stats.popped += len(items)
        self._queue.clear()
        return items

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._queue)
