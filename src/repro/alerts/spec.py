"""The declarative trigger-spec language of :mod:`repro.alerts`.

A trigger watches one GSQL query's output stream and fires typed
RAISE/CLEAR alerts when a condition over *epochs* of that stream holds.
Specs are compact strings in the same ``NAME:key=value,...`` shape as
the ``--fault`` injector specs::

    synflood:on=syn_watch,key=destIP,when=sum(syns) > 1000,
             epoch=5,raise_for=1,clear_for=2,severity=critical,
             min_interval=30

The condition grammar (the RTLOLA-flavored core, kept deliberately
small)::

    expr  := term ('or' term)*
    term  := atom ('and' atom)*
    atom  := '(' expr ')'
           | 'absent' '(' INT ')'                    # N empty epochs
           | 'delta' '(' agg ',' INT ')' CMP NUMBER  # trend over N epochs
           | agg CMP NUMBER                          # threshold
    agg   := ('count'|'sum'|'min'|'max'|'avg') '(' FIELD ')'
           | 'count' '(' '*' ')'
           | FIELD                                   # shorthand: max(FIELD)
    CMP   := > >= < <= = !=

Aggregates summarize the rows the watched query emitted during one
evaluation epoch (per ``key=`` group when keyed).  ``delta(a, N)`` is
the current epoch's value of ``a`` minus its value ``N`` epochs ago;
``absent(N)`` is true after ``N`` consecutive epochs with no rows.

**Bounded memory.**  Every spec is validated against the same ordering
reasoning GSQL uses to unblock operators (:mod:`repro.gsql.ordering`):
the epoch clock is derived from stream time, whose ordering property is
``increasing`` -- ``usable_for_windows`` -- so closed epochs can be
evicted.  The spec's *retention* (the largest lookback any part of it
needs: delta windows, absence spans, hysteresis streaks) must be a
finite number of epochs; a spec that would need unbounded history is
rejected at parse time with the offending field named.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.gsql.ordering import Ordering

#: hard ceiling on any lookback window, in epochs; larger (or infinite)
#: windows are "unbounded" for the purposes of the memory argument
MAX_WINDOW_EPOCHS = 4096

SEVERITIES = ("info", "warning", "critical")

_AGG_FNS = ("count", "sum", "min", "max", "avg")
_CMP_OPS = (">=", "<=", "!=", ">", "<", "=")

_KNOWN_OPTIONS = ("on", "when", "key", "severity", "epoch",
                  "raise_for", "clear_for", "min_interval")


class AlertSpecError(ValueError):
    """A malformed trigger spec; the message names the bad field."""

    def __init__(self, field_name: str, message: str) -> None:
        self.field = field_name
        super().__init__(f"{field_name}: {message}")


# ---------------------------------------------------------------------------
# Condition AST
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Agg:
    """One epoch aggregate: ``fn(field)`` (field None for ``count(*)``)."""

    fn: str
    field: Optional[str]

    @property
    def key(self) -> str:
        return f"{self.fn}({self.field or '*'})"

    def value(self, ctx: "EpochContext") -> Optional[float]:
        if self.fn == "count":
            if self.field is None:
                return float(ctx.rows)
            acc = ctx.fields.get(self.field.lower())
            return float(acc[0]) if acc is not None else 0.0
        acc = ctx.fields.get(self.field.lower())
        if self.fn == "sum":
            return float(acc[1]) if acc is not None else 0.0
        if acc is None:  # min/max/avg of an empty epoch are undefined
            return None
        if self.fn == "min":
            return float(acc[2])
        if self.fn == "max":
            return float(acc[3])
        return float(acc[1]) / acc[0]  # avg

    def __str__(self) -> str:
        return self.key


class EpochContext:
    """What one (key, epoch) pair exposes to condition evaluation.

    ``fields`` maps a lowercased field name to its ``[count, total,
    min, max]`` accumulator for the epoch; ``history`` maps a delta
    expression's key to the values of *previous* epochs (most recent
    last); ``idle`` counts consecutive empty epochs ending with this
    one.
    """

    __slots__ = ("rows", "fields", "history", "idle")

    def __init__(self, rows: int, fields: Dict[str, list],
                 history: Dict[str, List[Optional[float]]], idle: int) -> None:
        self.rows = rows
        self.fields = fields
        self.history = history
        self.idle = idle


def _compare(left: Optional[float], op: str, right: float) -> bool:
    if left is None:
        return False
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == "=":
        return left == right
    return left != right  # !=


@dataclass(frozen=True)
class Threshold:
    """``agg CMP number``."""

    agg: Agg
    op: str
    bound: float

    def evaluate(self, ctx: EpochContext) -> bool:
        return _compare(self.agg.value(ctx), self.op, self.bound)

    def observed(self, ctx: EpochContext) -> Optional[float]:
        return self.agg.value(ctx)

    @property
    def window(self) -> int:
        return 0

    def deltas(self) -> List["Delta"]:
        return []

    def __str__(self) -> str:
        return f"{self.agg} {self.op} {self.bound:g}"


@dataclass(frozen=True)
class Delta:
    """``delta(agg, N) CMP number``: trend over a sliding N-epoch window."""

    agg: Agg
    lookback: int
    op: str
    bound: float

    @property
    def key(self) -> str:
        return f"delta({self.agg.key},{self.lookback})"

    def current_minus_past(self, ctx: EpochContext) -> Optional[float]:
        current = self.agg.value(ctx)
        history = ctx.history.get(self.key, ())
        if current is None or len(history) < self.lookback:
            return None
        past = history[-self.lookback]
        if past is None:
            return None
        return current - past

    def evaluate(self, ctx: EpochContext) -> bool:
        return _compare(self.current_minus_past(ctx), self.op, self.bound)

    def observed(self, ctx: EpochContext) -> Optional[float]:
        return self.current_minus_past(ctx)

    @property
    def window(self) -> int:
        return self.lookback

    def deltas(self) -> List["Delta"]:
        return [self]

    def __str__(self) -> str:
        return f"delta({self.agg},{self.lookback}) {self.op} {self.bound:g}"


@dataclass(frozen=True)
class Absent:
    """``absent(N)``: the watched stream produced nothing for N epochs."""

    span: int

    def evaluate(self, ctx: EpochContext) -> bool:
        return ctx.idle >= self.span

    def observed(self, ctx: EpochContext) -> Optional[float]:
        return float(ctx.idle)

    @property
    def window(self) -> int:
        return self.span

    def deltas(self) -> List[Delta]:
        return []

    def __str__(self) -> str:
        return f"absent({self.span})"


@dataclass(frozen=True)
class Composite:
    """AND/OR of sub-conditions."""

    op: str  # "and" | "or"
    parts: Tuple[object, ...]

    def evaluate(self, ctx: EpochContext) -> bool:
        if self.op == "and":
            return all(part.evaluate(ctx) for part in self.parts)
        return any(part.evaluate(ctx) for part in self.parts)

    def observed(self, ctx: EpochContext) -> Optional[float]:
        return self.parts[0].observed(ctx)

    @property
    def window(self) -> int:
        return max(part.window for part in self.parts)

    def deltas(self) -> List[Delta]:
        out: List[Delta] = []
        for part in self.parts:
            out.extend(part.deltas())
        return out

    def __str__(self) -> str:
        return f" {self.op} ".join(
            f"({part})" if isinstance(part, Composite) else str(part)
            for part in self.parts)


# ---------------------------------------------------------------------------
# Condition parser
# ---------------------------------------------------------------------------

_TOKEN = re.compile(r"""
    \s*(
        >=|<=|!=|[><=(),*]
      | [A-Za-z_][A-Za-z0-9_.]*
      | -?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?
      | -?inf
    )""", re.VERBOSE)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            if text[position:].strip():
                raise AlertSpecError(
                    "when", f"cannot tokenize {text[position:].strip()!r}")
            break
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _ConditionParser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.position = 0

    def peek(self) -> Optional[str]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def take(self, expected: Optional[str] = None) -> str:
        token = self.peek()
        if token is None:
            raise AlertSpecError(
                "when", f"unexpected end of condition {self.text!r}")
        if expected is not None and token != expected:
            raise AlertSpecError(
                "when", f"expected {expected!r}, got {token!r} "
                        f"in {self.text!r}")
        self.position += 1
        return token

    def parse(self):
        condition = self.parse_or()
        if self.peek() is not None:
            raise AlertSpecError(
                "when", f"trailing input {self.peek()!r} in {self.text!r}")
        return condition

    def parse_or(self):
        parts = [self.parse_and()]
        while self.peek() is not None and self.peek().lower() == "or":
            self.take()
            parts.append(self.parse_and())
        if len(parts) == 1:
            return parts[0]
        return Composite("or", tuple(parts))

    def parse_and(self):
        parts = [self.parse_atom()]
        while self.peek() is not None and self.peek().lower() == "and":
            self.take()
            parts.append(self.parse_atom())
        if len(parts) == 1:
            return parts[0]
        return Composite("and", tuple(parts))

    def parse_atom(self):
        token = self.peek()
        if token == "(":
            self.take()
            inner = self.parse_or()
            self.take(")")
            return inner
        if token is not None and token.lower() == "absent":
            self.take()
            self.take("(")
            span = self._window(self.take(), "absent")
            self.take(")")
            return Absent(span)
        if token is not None and token.lower() == "delta":
            self.take()
            self.take("(")
            agg = self.parse_agg()
            self.take(",")
            lookback = self._window(self.take(), "delta")
            self.take(")")
            op, bound = self.parse_comparison()
            return Delta(agg, lookback, op, bound)
        agg = self.parse_agg()
        op, bound = self.parse_comparison()
        return Threshold(agg, op, bound)

    def parse_agg(self) -> Agg:
        token = self.take()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_.]*", token):
            raise AlertSpecError(
                "when", f"expected an aggregate or field, got {token!r}")
        if token.lower() in _AGG_FNS and self.peek() == "(":
            fn = token.lower()
            self.take("(")
            inner = self.take()
            if inner == "*":
                if fn != "count":
                    raise AlertSpecError(
                        "when", f"'*' is only valid in count(*), not {fn}(*)")
                field_name = None
            else:
                field_name = inner
            self.take(")")
            return Agg(fn, field_name)
        # A bare field is shorthand for max(field): "did any row this
        # epoch exceed the bound".
        return Agg("max", token)

    def parse_comparison(self) -> Tuple[str, float]:
        op = self.take()
        if op not in _CMP_OPS:
            raise AlertSpecError(
                "when", f"expected a comparison operator "
                        f"({'/'.join(_CMP_OPS)}), got {op!r}")
        literal = self.take()
        try:
            bound = float(literal)
        except ValueError:
            raise AlertSpecError(
                "when", f"expected a number after {op!r}, got {literal!r}"
            ) from None
        if not math.isfinite(bound):
            raise AlertSpecError(
                "when", f"comparison bound must be finite, got {literal!r}")
        return op, bound

    def _window(self, literal: str, construct: str) -> int:
        """A window length in epochs: a positive, finite, bounded int.

        This is where the bounded-memory rejection happens for
        conditions: an infinite or absurdly large lookback would defeat
        epoch eviction.
        """
        try:
            value = float(literal)
        except ValueError:
            raise AlertSpecError(
                "when", f"{construct} window must be a number of epochs, "
                        f"got {literal!r}") from None
        if not math.isfinite(value):
            raise AlertSpecError(
                "when", f"{construct} window is unbounded ({literal}); "
                        f"evaluation state must be bounded-memory")
        if value != int(value) or value < 1:
            raise AlertSpecError(
                "when", f"{construct} window must be a whole number of "
                        f"epochs >= 1, got {literal!r}")
        if value > MAX_WINDOW_EPOCHS:
            raise AlertSpecError(
                "when", f"{construct} window of {int(value)} epochs exceeds "
                        f"the bounded-memory ceiling of {MAX_WINDOW_EPOCHS}")
        return int(value)


def parse_condition(text: str):
    """Parse a ``when=`` condition into its AST."""
    if not text.strip():
        raise AlertSpecError("when", "condition is empty")
    return _ConditionParser(text).parse()


# ---------------------------------------------------------------------------
# The trigger spec
# ---------------------------------------------------------------------------

@dataclass
class TriggerSpec:
    """One parsed, validated trigger definition."""

    name: str
    on: str
    condition: object
    key: Optional[str] = None
    severity: str = "warning"
    epoch: float = 1.0
    raise_for: int = 1
    clear_for: int = 1
    min_interval: float = 0.0
    #: epochs of per-key history/idleness to retain (the memory bound)
    retention_epochs: int = field(init=False, default=1)

    def __post_init__(self) -> None:
        # Eviction forgets a key's ``last_raise`` timestamp, so retention
        # must also span the rate-limit interval or an idle gap would
        # reset the limiter.  Capped at the ceiling: memory stays
        # bounded, and a limiter can outlast at most MAX_WINDOW_EPOCHS
        # of idleness.
        interval_epochs = 0
        if (self.min_interval > 0 and math.isfinite(self.epoch)
                and self.epoch > 0):
            interval_epochs = min(MAX_WINDOW_EPOCHS,
                                  math.ceil(self.min_interval / self.epoch))
        self.retention_epochs = max(
            1, self.condition.window, self.raise_for, self.clear_for,
            interval_epochs)

    def validate_bounded(self) -> None:
        """The bounded-memory argument, executed.

        The epoch clock is virtual stream time, whose ordering property
        is ``increasing`` -- the same ``usable_for_windows`` test that
        lets GSQL flush aggregation groups guarantees closed epochs can
        be evicted here.  Retention must then be finitely many epochs.
        """
        clock = Ordering.increasing()
        if not clock.usable_for_windows:  # pragma: no cover - invariant
            raise AlertSpecError(
                "when", "epoch clock ordering cannot bound state")
        if not math.isfinite(self.epoch) or self.epoch <= 0:
            raise AlertSpecError(
                "epoch", f"must be a positive finite number of seconds, "
                         f"got {self.epoch!r}")
        if self.retention_epochs > MAX_WINDOW_EPOCHS:
            raise AlertSpecError(
                "when", f"retention of {self.retention_epochs} epochs "
                        f"exceeds the bounded-memory ceiling of "
                        f"{MAX_WINDOW_EPOCHS}")

    def referenced_fields(self) -> List[str]:
        """Every stream field the condition (and key) read."""
        fields: List[str] = []

        def walk(node) -> None:
            if isinstance(node, Composite):
                for part in node.parts:
                    walk(part)
            elif isinstance(node, (Threshold, Delta)):
                if node.agg.field is not None:
                    fields.append(node.agg.field)

        walk(self.condition)
        if self.key is not None:
            fields.append(self.key)
        return fields

    def validate_fields(self, schema) -> None:
        """Check every referenced field exists in the watched schema."""
        for field_name in self.referenced_fields():
            if field_name not in schema:
                known = ", ".join(schema.names)
                which = "key" if field_name == self.key else "when"
                raise AlertSpecError(
                    which, f"unknown field {field_name!r} in stream "
                           f"{schema.name!r} (has: {known})")

    def describe(self) -> str:
        parts = [f"on={self.on}", f"when={self.condition}"]
        if self.key:
            parts.append(f"key={self.key}")
        parts.append(f"severity={self.severity}")
        parts.append(f"epoch={self.epoch:g}s")
        if self.raise_for != 1 or self.clear_for != 1:
            parts.append(f"hysteresis={self.raise_for}/{self.clear_for}")
        if self.min_interval:
            parts.append(f"min_interval={self.min_interval:g}s")
        return f"{self.name}: " + " ".join(parts)


def _split_options(text: str) -> List[str]:
    """Split ``k=v,k=v`` on commas, ignoring commas inside parentheses
    (the ``when=delta(x,3) > 5`` case)."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth = max(0, depth - 1)
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return [part for part in parts if part.strip()]


def _positive_int(field_name: str, value: str) -> int:
    try:
        number = float(value)
    except ValueError:
        raise AlertSpecError(
            field_name, f"must be a whole number of epochs, "
                        f"got {value!r}") from None
    if not math.isfinite(number):
        raise AlertSpecError(
            field_name, f"is unbounded ({value}); evaluation state must "
                        f"be bounded-memory")
    if number != int(number) or number < 1:
        raise AlertSpecError(
            field_name, f"must be a whole number of epochs >= 1, "
                        f"got {value!r}")
    if number > MAX_WINDOW_EPOCHS:
        raise AlertSpecError(
            field_name, f"of {int(number)} epochs exceeds the "
                        f"bounded-memory ceiling of {MAX_WINDOW_EPOCHS}")
    return int(number)


def parse_alert_spec(text: str) -> TriggerSpec:
    """Parse ``NAME:on=QUERY,when=COND[,key=F][,...]`` into a spec.

    Raises :class:`AlertSpecError` naming the bad field on any problem.
    """
    name, separator, rest = text.partition(":")
    name = name.strip()
    if not separator or not name:
        raise AlertSpecError(
            "name", f"spec must look like 'NAME:on=...,when=...', "
                    f"got {text!r}")
    if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_-]*", name):
        raise AlertSpecError(
            "name", f"{name!r} is not a valid trigger name")
    options: Dict[str, str] = {}
    for part in _split_options(rest):
        key, eq, value = part.partition("=")
        key = key.strip().lower()
        if not eq:
            raise AlertSpecError(
                key or "spec", f"option {part.strip()!r} is not KEY=VALUE")
        if key not in _KNOWN_OPTIONS:
            raise AlertSpecError(
                key, f"unknown option; known: {', '.join(_KNOWN_OPTIONS)}")
        if key in options:
            raise AlertSpecError(key, "given more than once")
        options[key] = value.strip()
    if "on" not in options or not options["on"]:
        raise AlertSpecError("on", "required: the query name to watch")
    if "when" not in options:
        raise AlertSpecError("when", "required: the trigger condition")
    condition = parse_condition(options["when"])

    severity = options.get("severity", "warning").lower()
    if severity not in SEVERITIES:
        raise AlertSpecError(
            "severity", f"must be one of {'/'.join(SEVERITIES)}, "
                        f"got {options['severity']!r}")

    epoch_text = options.get("epoch", "1")
    try:
        epoch = float(epoch_text)
    except ValueError:
        raise AlertSpecError(
            "epoch", f"must be a number of seconds, got {epoch_text!r}"
        ) from None

    interval_text = options.get("min_interval", "0")
    try:
        min_interval = float(interval_text)
    except ValueError:
        raise AlertSpecError(
            "min_interval",
            f"must be a number of seconds, got {interval_text!r}") from None
    if not math.isfinite(min_interval) or min_interval < 0:
        raise AlertSpecError(
            "min_interval",
            f"must be a finite number of seconds >= 0, got {interval_text!r}")

    spec = TriggerSpec(
        name=name,
        on=options["on"],
        condition=condition,
        key=options.get("key") or None,
        severity=severity,
        epoch=epoch,
        raise_for=_positive_int("raise_for", options.get("raise_for", "1")),
        clear_for=_positive_int("clear_for", options.get("clear_for", "1")),
        min_interval=min_interval,
    )
    spec.validate_bounded()
    return spec
