"""Alerting/trigger subsystem (DESIGN section 12).

Declarative trigger specs over any GSQL subscription, evaluated in
virtual time at pump boundaries, emitting typed RAISE/CLEAR alert
streams with hysteresis and rate limiting.  Enable with
:meth:`repro.core.engine.Gigascope.enable_alerts`.
"""

from repro.alerts.engine import (
    AlertBusNode,
    AlertEngine,
    EpochTick,
    TriggerNode,
    alert_schema,
)
from repro.alerts.spec import (
    MAX_WINDOW_EPOCHS,
    SEVERITIES,
    AlertSpecError,
    TriggerSpec,
    parse_alert_spec,
    parse_condition,
)

__all__ = [
    "AlertBusNode",
    "AlertEngine",
    "AlertSpecError",
    "EpochTick",
    "MAX_WINDOW_EPOCHS",
    "SEVERITIES",
    "TriggerNode",
    "TriggerSpec",
    "alert_schema",
    "parse_alert_spec",
    "parse_condition",
]
