"""Alert evaluation: epoch clock, trigger nodes, and the alert bus.

Evaluation is *periodic in virtual time at pump boundaries*: every
:meth:`~repro.core.stream_manager.RuntimeSystem.pump` cycle the
:class:`AlertEngine` pushes one :class:`EpochTick` carrying the current
stream time into each trigger's dedicated clock channel.  A
:class:`TriggerNode` is an ordinary HFTA node with two inputs -- the
watched query's output (index 0) and the clock (index 1) -- so both
rows and ticks flow through journaled channels: under the recovery
supervisor the entire evaluation is a pure function of journaled input
items, which is what makes a crash/restore byte-identical to the clean
run (``replay verify-alerts``).

A tick at stream time ``t`` closes every epoch with index below
``floor(t / epoch)``, oldest first; epochs a quiet period skipped
entirely are evaluated as empty (that is what ``absent(N)`` and
hysteresis decay observe).  Alert rows -- RAISE/CLEAR with severity,
firing epoch, and the triggering tuple as context -- fan into one
:class:`AlertBusNode` (stream name ``"alerts"`` by default) so a single
subscription or sink sees every trigger's stream.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from repro.alerts.spec import AlertSpecError, TriggerSpec, parse_alert_spec
from repro.alerts.spec import EpochContext
from repro.core.channels import Channel
from repro.core.query_node import QueryNode
from repro.gsql.ordering import Ordering
from repro.gsql.schema import Attribute, StreamSchema
from repro.gsql.types import FLOAT, IP, STRING, UINT
from repro.net.packet import int_to_ip


class EpochTick:
    """Control token: the epoch clock observed stream time ``time``.

    Flows through a trigger's clock channel (never dropped -- bounded
    channels only shed data tuples) and is journaled like any other
    channel item, so recovery replay re-drives epoch evaluation.
    """

    __slots__ = ("time",)

    def __init__(self, time: float) -> None:
        self.time = time

    def __repr__(self) -> str:
        return f"EpochTick({self.time!r})"


def alert_schema(name: str, increasing: bool = True) -> StreamSchema:
    """The typed alert stream schema (one per trigger, one for the bus).

    A single trigger emits in nondecreasing alert time; the bus
    interleaves several triggers within a pump cycle, so it makes no
    ordering claim.
    """
    time_ordering = Ordering.increasing() if increasing else Ordering.none()
    return StreamSchema(name, [
        Attribute("time", FLOAT, time_ordering),
        Attribute("epoch", UINT, time_ordering),
        Attribute("trigger", STRING),
        Attribute("kind", STRING),
        Attribute("severity", STRING),
        Attribute("key", STRING),
        Attribute("value", FLOAT),
        Attribute("context", STRING),
    ])


class TriggerNode(QueryNode):
    """Evaluates one :class:`TriggerSpec` against a query's output.

    State is bounded by construction (DESIGN section 12): per retained
    key there is one open-epoch accumulator, delta histories capped at
    their lookback, the hysteresis streaks, and one context row; keys
    idle for ``spec.retention_epochs`` consecutive epochs with no
    raised alert are evicted outright.
    """

    accepts_batch = False

    def __init__(self, spec: TriggerSpec, schema: StreamSchema) -> None:
        super().__init__(f"alert_{spec.name}", alert_schema(spec.name))
        self.spec = spec
        self.watched_schema = schema
        self._key_index = (schema.index_of(spec.key)
                           if spec.key is not None else None)
        key_type = (schema.attribute(spec.key).gsql_type
                    if spec.key is not None else None)
        self._key_is_ip = key_type is IP
        #: (lowercased field name, tuple position) for every field the
        #: condition aggregates over
        seen = set()
        self._agg_fields = []
        for field_name in spec.referenced_fields():
            lower = field_name.lower()
            if field_name != spec.key and lower not in seen:
                seen.add(lower)
                self._agg_fields.append((lower, schema.index_of(field_name)))
        self._delta_keys = [(delta.key, delta.agg, delta.lookback)
                            for delta in spec.condition.deltas()]
        #: the clock channel, filled by AlertEngine.on_cycle
        self.tick_channel: Optional[Channel] = None
        # -- evaluation state (all snapshot/restore-covered) ---------------
        self._open_epoch: Optional[int] = None
        self._rows: Dict[Any, int] = {}          # key -> rows this epoch
        self._acc: Dict[Any, Dict[str, list]] = {}  # key -> field -> acc
        self._context: Dict[Any, tuple] = {}     # key -> last row seen
        self._history: Dict[Any, Dict[str, list]] = {}  # key -> delta hist
        self._true_streak: Dict[Any, int] = {}
        self._false_streak: Dict[Any, int] = {}
        self._raised: Dict[Any, bool] = {}
        self._last_raise: Dict[Any, float] = {}
        self._idle: Dict[Any, int] = {}
        # -- counters (surfaced as node extras and gs_alert* metrics) ------
        self.alerts_raised = 0
        self.alerts_cleared = 0
        self.alerts_suppressed = 0
        self.epochs_evaluated = 0

    @property
    def alerts_active(self) -> int:
        return len(self._raised)

    # -- input handling ------------------------------------------------------
    def dispatch(self, item: Any, input_index: int) -> None:
        if type(item) is EpochTick:
            self.on_tick(item.time)
        else:
            super().dispatch(item, input_index)

    def on_tuple(self, row: tuple, input_index: int) -> None:
        key = row[self._key_index] if self._key_index is not None else None
        self._rows[key] = self._rows.get(key, 0) + 1
        self._context[key] = row
        if self._agg_fields:
            accs = self._acc.get(key)
            if accs is None:
                accs = self._acc[key] = {}
            for field_name, position in self._agg_fields:
                value = row[position]
                if not isinstance(value, (int, float)):
                    continue  # non-numeric fields cannot be aggregated
                acc = accs.get(field_name)
                if acc is None:
                    accs[field_name] = [1, value, value, value]
                else:
                    acc[0] += 1
                    acc[1] += value
                    if value < acc[2]:
                        acc[2] = value
                    if value > acc[3]:
                        acc[3] = value

    def on_tick(self, stream_time: float) -> None:
        target = math.floor(stream_time / self.spec.epoch)
        if self._open_epoch is None:
            # The first tick opens the epoch containing it; rows that
            # arrived earlier belong to this first epoch.
            self._open_epoch = target
            return
        while self._open_epoch < target:
            self._close_epoch(self._open_epoch)
            self._open_epoch += 1

    def flush(self) -> None:
        # End of stream: evaluate the partially filled open epoch so a
        # condition met in the final epoch still fires.
        if self._open_epoch is not None:
            self._close_epoch(self._open_epoch)
            self._open_epoch += 1

    # -- epoch evaluation -----------------------------------------------------
    def _ordered_keys(self) -> List[Any]:
        """Every key with live state, in deterministic (insertion) order.

        Never iterate a set union here: set order depends on
        PYTHONHASHSEED for bytes/str keys and would break replay.
        """
        if self._key_index is None:
            return [None]
        ordered: List[Any] = []
        seen = set()
        for mapping in (self._rows, self._raised, self._true_streak,
                        self._false_streak, self._history, self._idle):
            for key in mapping:
                if key not in seen:
                    seen.add(key)
                    ordered.append(key)
        return ordered

    def _close_epoch(self, index: int) -> None:
        spec = self.spec
        close_time = (index + 1) * spec.epoch
        self.epochs_evaluated += 1
        for key in self._ordered_keys():
            rows = self._rows.get(key, 0)
            idle = 0 if rows else self._idle.get(key, 0) + 1
            self._idle[key] = idle
            history = self._history.get(key, {})
            ctx = EpochContext(rows, self._acc.get(key, {}), history, idle)
            result = spec.condition.evaluate(ctx)
            observed = spec.condition.observed(ctx)
            self._push_history(key, ctx)
            self._hysteresis(key, result, observed, index, close_time)
            self._maybe_evict(key, idle)
        self._rows.clear()
        self._acc.clear()

    def _push_history(self, key: Any, ctx: EpochContext) -> None:
        if not self._delta_keys:
            return
        history = self._history.get(key)
        if history is None:
            history = self._history[key] = {}
        for delta_key, agg, lookback in self._delta_keys:
            values = history.get(delta_key)
            if values is None:
                values = history[delta_key] = []
            values.append(agg.value(ctx))
            if len(values) > lookback:
                del values[:len(values) - lookback]

    def _hysteresis(self, key: Any, result: bool,
                    observed: Optional[float], index: int,
                    close_time: float) -> None:
        spec = self.spec
        raised = key in self._raised
        if result:
            streak = self._true_streak.get(key, 0) + 1
            self._true_streak[key] = streak
            self._false_streak.pop(key, None)
            if raised or streak < spec.raise_for:
                return
            last = self._last_raise.get(key)
            if (spec.min_interval > 0 and last is not None
                    and close_time - last < spec.min_interval):
                self.alerts_suppressed += 1
                return
            self._raised[key] = True
            self._last_raise[key] = close_time
            self.alerts_raised += 1
            self.emit(self._alert_row("RAISE", key, observed, index,
                                      close_time))
        else:
            streak = self._false_streak.get(key, 0) + 1
            self._false_streak[key] = streak
            self._true_streak.pop(key, None)
            if raised and streak >= spec.clear_for:
                del self._raised[key]
                self.alerts_cleared += 1
                self.emit(self._alert_row("CLEAR", key, observed, index,
                                          close_time))

    def _maybe_evict(self, key: Any, idle: int) -> None:
        """Drop all state for a long-idle, un-raised key.

        This is the bounded-memory guarantee in action: retention is
        the finite epoch count validated at parse time, so per-key
        state is O(active alerts + recently seen keys).
        """
        if key is None or key in self._raised:
            return
        if idle < self.spec.retention_epochs:
            return
        for mapping in (self._rows, self._acc, self._context, self._history,
                        self._true_streak, self._false_streak,
                        self._last_raise, self._idle):
            mapping.pop(key, None)

    def _render_key(self, key: Any) -> bytes:
        if key is None:
            return b""
        if self._key_is_ip and isinstance(key, int):
            return int_to_ip(key).encode("ascii")
        if isinstance(key, bytes):
            return key
        return str(key).encode("utf-8", "backslashreplace")

    def _alert_row(self, kind: str, key: Any, observed: Optional[float],
                   index: int, close_time: float) -> tuple:
        context = self._context.get(key)
        return (
            float(close_time),
            int(index),
            self.spec.name.encode("ascii"),
            kind.encode("ascii"),
            self.spec.severity.encode("ascii"),
            self._render_key(key),
            float(observed) if observed is not None else 0.0,
            repr(context).encode("utf-8", "backslashreplace")
            if context is not None else b"",
        )

    # -- checkpoint/restore (DESIGN sections 11 & 12) -------------------------
    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["alerts"] = {
            "open_epoch": self._open_epoch,
            "rows": self._rows,
            "acc": self._acc,
            "context": self._context,
            "history": self._history,
            "true_streak": self._true_streak,
            "false_streak": self._false_streak,
            "raised": self._raised,
            "last_raise": self._last_raise,
            "idle": self._idle,
            "counters": (self.alerts_raised, self.alerts_cleared,
                         self.alerts_suppressed, self.epochs_evaluated),
        }
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        alerts = state["alerts"]
        self._open_epoch = alerts["open_epoch"]
        self._rows = dict(alerts["rows"])
        self._acc = {key: {f: list(acc) for f, acc in accs.items()}
                     for key, accs in alerts["acc"].items()}
        self._context = {key: tuple(row)
                         for key, row in alerts["context"].items()}
        self._history = {key: {f: list(vals) for f, vals in hist.items()}
                         for key, hist in alerts["history"].items()}
        self._true_streak = dict(alerts["true_streak"])
        self._false_streak = dict(alerts["false_streak"])
        self._raised = dict(alerts["raised"])
        self._last_raise = dict(alerts["last_raise"])
        self._idle = dict(alerts["idle"])
        (self.alerts_raised, self.alerts_cleared,
         self.alerts_suppressed, self.epochs_evaluated) = alerts["counters"]


class AlertBusNode(QueryNode):
    """Unions every trigger's alert stream into one subscribable stream.

    Unlike the default one-flush-flushes-all policy, the bus waits for
    *all* trigger inputs to flush before ending the alert stream, so a
    late trigger's final-epoch alerts still reach subscribers.
    """

    def __init__(self, name: str = "alerts") -> None:
        super().__init__(name, alert_schema(name, increasing=False))
        self._flushed_inputs: List[int] = []

    def on_tuple(self, row: tuple, input_index: int) -> None:
        self.emit(row)

    def on_flush(self, input_index: int) -> None:
        if input_index not in self._flushed_inputs:
            self._flushed_inputs.append(input_index)
        if len(self._flushed_inputs) >= len(self.inputs) and not self.flushed:
            self.flushed = True
            self.flush()
            self.emit_flush()

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["flushed_inputs"] = list(self._flushed_inputs)
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._flushed_inputs = list(state["flushed_inputs"])


class AlertEngine:
    """Owns the triggers, the bus, and the epoch clock.

    Created via :meth:`repro.core.engine.Gigascope.enable_alerts`; the
    RTS calls :meth:`on_cycle` at every pump boundary.
    """

    def __init__(self, engine, bus_name: str = "alerts") -> None:
        self.engine = engine
        self.rts = engine.rts
        self.bus = AlertBusNode(bus_name)
        engine.add_node(self.bus)
        self.triggers: Dict[str, TriggerNode] = {}
        self._last_tick = -math.inf
        self.ticks_sent = 0
        self.rts.alert_engine = self
        if self.rts.metrics is not None:
            from repro.obs.collectors import install_alert_metrics
            install_alert_metrics(self.rts.metrics, self)

    def add_trigger(self, spec) -> TriggerNode:
        """Attach a trigger (a :class:`TriggerSpec` or a spec string)."""
        if isinstance(spec, str):
            spec = parse_alert_spec(spec)
        if spec.name in self.triggers:
            raise AlertSpecError(
                "name", f"trigger {spec.name!r} already exists")
        try:
            schema = self.engine.schema_of(spec.on)
        except KeyError:
            raise AlertSpecError(
                "on", f"unknown query or stream {spec.on!r}") from None
        spec.validate_fields(schema)
        node = TriggerNode(spec, schema)
        self.rts.register_node(node)
        self.rts.connect(node, [spec.on])          # input 0: watched rows
        clock = Channel(name=f"epoch->{node.name}")
        node.tick_channel = clock
        node.attach_input(clock)                   # input 1: the clock
        bus_channel = node.subscribe(name=f"{node.name}->{self.bus.name}")
        self.bus.attach_input(bus_channel)
        self.bus.input_links.append((node, bus_channel))
        self.triggers[spec.name] = node
        return node

    def on_cycle(self, stream_time: float) -> None:
        """Pump-boundary hook: advance the epoch clock in virtual time."""
        if math.isinf(stream_time) or stream_time <= self._last_tick:
            return
        self._last_tick = stream_time
        if not self.triggers:
            return
        tick = EpochTick(stream_time)
        self.ticks_sent += 1
        for node in self.triggers.values():
            # Push unconditionally: a supervisor-suspended node catches
            # up from its channel backlog on resume, keeping the crash
            # arm's tick sequence identical to the clean arm's.
            node.tick_channel.push(tick)

    def shed_exempt_nodes(self) -> set:
        """Node names pinned exempt from adaptive shedding.

        A raised alert is exactly when the evidence feeding it must not
        be thinned: every shed-capable node upstream of a trigger with
        at least one raised key (walked transitively through
        ``input_links``, so merge/join plans exempt all their feeder
        LFTAs) is reported here until the alert CLEARs.  The
        OverloadController re-reads this set each cycle and holds these
        nodes at keep-rate 1.0.
        """
        exempt: set = set()
        for trigger in self.triggers.values():
            if not trigger.alerts_active:
                continue
            stack: List[Any] = [trigger]
            seen: set = set()
            while stack:
                node = stack.pop()
                if id(node) in seen:
                    continue
                seen.add(id(node))
                if hasattr(node, "set_shed_rate"):
                    exempt.add(node.name)
                for producer, _channel in getattr(node, "input_links", ()):
                    stack.append(producer)
        return exempt

    def report(self) -> Dict[str, Any]:
        """The alert plane's ledger (the ``# alert report`` source)."""
        triggers = {}
        for name, node in self.triggers.items():
            triggers[name] = {
                "on": node.spec.on,
                "key": node.spec.key,
                "severity": node.spec.severity,
                "epoch": node.spec.epoch,
                "condition": str(node.spec.condition),
                "retention_epochs": node.spec.retention_epochs,
                "active": node.alerts_active,
                "raised": node.alerts_raised,
                "cleared": node.alerts_cleared,
                "suppressed": node.alerts_suppressed,
                "epochs_evaluated": node.epochs_evaluated,
            }
        return {
            "bus": self.bus.name,
            "ticks_sent": self.ticks_sent,
            "active_total": sum(t["active"] for t in triggers.values()),
            "raised_total": sum(t["raised"] for t in triggers.values()),
            "cleared_total": sum(t["cleared"] for t in triggers.values()),
            "suppressed_total": sum(t["suppressed"]
                                    for t in triggers.values()),
            "triggers": triggers,
        }
