"""Gigascope reproduction: a stream database for network applications.

A from-scratch Python reproduction of Cranor, Johnson, Spatscheck &
Shkapenyuk, *Gigascope: A Stream Database for Network Applications*
(SIGMOD 2003): the GSQL language, the two-level LFTA/HFTA query
compiler, the stream-manager run-time, and the simulated capture
substrate (NIC, host, disk) used to reproduce the paper's evaluation.

Quick start::

    from repro import Gigascope
    gs = Gigascope()
    gs.add_query("DEFINE query_name q; Select destIP, time From eth0.tcp "
                 "Where destPort = 80")
    sub = gs.subscribe("q")
    gs.start()
    gs.feed(packets)
    gs.flush()
    rows = sub.poll()
"""

from repro.alerts import AlertEngine, AlertSpecError, TriggerSpec, parse_alert_spec
from repro.control import (
    AimdShedding,
    NoShedding,
    OverloadController,
    StaticShedding,
)
from repro.core.engine import Gigascope
from repro.core.stream_manager import RuntimeSystem, Subscription
from repro.determinism import rng_for, stable_hash, verify_replay
from repro.faults import (
    ChannelOverflowStorm,
    ClockSkew,
    HeartbeatSilence,
    OperatorFault,
    RingLossBurst,
)
from repro.core.query_node import QueryNode, UserNode
from repro.gsql.functions import FunctionSpec
from repro.gsql.schema import Attribute, ProtocolSchema, StreamSchema
from repro.net.packet import CapturedPacket
from repro.obs import MetricsRegistry, Tracer

__version__ = "1.3.0"

__all__ = [
    "Gigascope",
    "AlertEngine",
    "AlertSpecError",
    "TriggerSpec",
    "parse_alert_spec",
    "RuntimeSystem",
    "Subscription",
    "QueryNode",
    "UserNode",
    "FunctionSpec",
    "Attribute",
    "ProtocolSchema",
    "StreamSchema",
    "CapturedPacket",
    "MetricsRegistry",
    "Tracer",
    "OverloadController",
    "AimdShedding",
    "NoShedding",
    "StaticShedding",
    "stable_hash",
    "rng_for",
    "verify_replay",
    "RingLossBurst",
    "ChannelOverflowStorm",
    "ClockSkew",
    "HeartbeatSilence",
    "OperatorFault",
    "__version__",
]
