"""``python -m repro.replay``: entry point for the replay verifier.

A thin shim around :func:`repro.determinism.main`.  It exists because
``python -m repro.determinism`` re-executes a module the ``repro``
package import chain has already loaded (runpy warns about exactly
that); nothing imports ``repro.replay``, so this entry is clean.
"""

from __future__ import annotations

import sys

from repro.determinism import main

if __name__ == "__main__":
    sys.exit(main())
