"""A catalog of canned GSQL monitoring queries.

"By working closely with network analysts, we developed a system which
is fast and flexible enough to satisfy their expectations. ... they
quickly appreciate the ease with which new monitoring tasks can be
implemented."  These are the standard tasks, parameterized and ready to
``Gigascope.add_query``:

    from repro.queries import heavy_hitters
    gs.add_query(heavy_hitters(bucket_seconds=60, top_threshold=1000))

Each function returns GSQL text; parameters marked *runtime* become
``$params`` changeable on the fly.
"""

from __future__ import annotations

from typing import Optional


def _named(name: Optional[str], default: str) -> str:
    return f"DEFINE query_name {name or default};"


def packet_counts(bucket_seconds: int = 60, protocol: str = "ip",
                  name: Optional[str] = None) -> str:
    """Packets and bytes per time bucket."""
    return f"""
        {_named(name, 'packet_counts')}
        Select tb, count(*) as packets, sum(len) as bytes
        From {protocol}
        Group by time/{bucket_seconds} as tb
    """


def heavy_hitters(bucket_seconds: int = 60, top_threshold: int = 1000,
                  protocol: str = "ip", name: Optional[str] = None) -> str:
    """Destination hosts receiving more than *runtime* ``$threshold``
    packets per bucket."""
    return f"""
        {_named(name, 'heavy_hitters')}
        Select tb, destIP, count(*) as packets, sum(len) as bytes
        From {protocol}
        Group by time/{bucket_seconds} as tb, destIP
        Having count(*) > $threshold
    """, {"threshold": top_threshold}


def port_mix(bucket_seconds: int = 60, name: Optional[str] = None) -> str:
    """Traffic volume per destination port per bucket (TCP)."""
    return f"""
        {_named(name, 'port_mix')}
        Select tb, destPort, count(*) as packets, sum(len) as bytes
        From tcp
        Group by time/{bucket_seconds} as tb, destPort
    """


def syn_fin_ratio(bucket_seconds: int = 10, name: Optional[str] = None) -> str:
    """SYN and FIN counts per bucket; a growing gap signals SYN floods
    or scans (compare the two output streams)."""
    prefix = name or "synfin"
    return f"""
        DEFINE query_name {prefix}_syn;
        Select tb, count(*) From tcp
        Where tcpflags & 18 = 2
        Group by time/{bucket_seconds} as tb;

        DEFINE query_name {prefix}_fin;
        Select tb, count(*) From tcp
        Where tcpflags & 1 = 1
        Group by time/{bucket_seconds} as tb
    """


def peer_traffic(prefix_table: str, bucket_seconds: int = 60,
                 name: Optional[str] = None):
    """Per-peer (longest-prefix matched) traffic -- the paper's Section
    2.2 example.  ``prefix_table`` is a filename or inline table, passed
    by handle at *runtime* via ``$peers``."""
    return f"""
        {_named(name, 'peer_traffic')}
        Select peerid, tb, count(*) as packets, sum(len) as bytes
        From ip
        Group by time/{bucket_seconds} as tb,
                 getlpmid(destIP, $peers) as peerid
    """, {"peers": prefix_table}


def http_fraction(bucket_seconds: int = 10, name: Optional[str] = None) -> str:
    """The Section 4 pair: all port-80 packets vs genuine HTTP."""
    prefix = name or "http"
    return rf"""
        DEFINE query_name {prefix}_port80;
        Select tb, count(*) From tcp Where destPort = 80
        Group by time/{bucket_seconds} as tb;

        DEFINE query_name {prefix}_genuine;
        Select tb, count(*) From tcp
        Where destPort = 80 and str_match_regex(data, '^[^\n]*HTTP/1.')
        Group by time/{bucket_seconds} as tb
    """


def ping_sweep_detector(bucket_seconds: int = 10, threshold: int = 100,
                        name: Optional[str] = None):
    """Sources echo-requesting many distinct hosts (ICMP sweeps)."""
    return f"""
        {_named(name, 'ping_sweep')}
        Select tb, srcIP, count(*) as probes
        From icmp Where icmp_type = 8
        Group by time/{bucket_seconds} as tb, srcIP
        Having count(*) > $threshold
    """, {"threshold": threshold}


def fragment_monitor(bucket_seconds: int = 60,
                     name: Optional[str] = None) -> str:
    """Fragmented-datagram volume (teardrop-era attack telemetry)."""
    return f"""
        {_named(name, 'fragments')}
        Select tb, count(*) as fragments, sum(len) as bytes
        From ip
        Where frag_offset > 0 or more_fragments = 1
        Group by time/{bucket_seconds} as tb
    """


def nxdomain_storm(bucket_seconds: int = 5, threshold: int = 100,
                   name: Optional[str] = None):
    """Resolvers emitting bursts of NXDOMAIN (random-subdomain attacks)."""
    return f"""
        {_named(name, 'nxdomain_storm')}
        Select tb, srcIP, count(*) as nxdomains
        From dns Where is_response = 1 and rcode = 3
        Group by time/{bucket_seconds} as tb, srcIP
        Having count(*) > $threshold
    """, {"threshold": threshold}


def dns_query_mix(bucket_seconds: int = 60,
                  name: Optional[str] = None) -> str:
    """Query volume per qtype per bucket."""
    return f"""
        {_named(name, 'dns_mix')}
        Select tb, qtype, count(*) as queries
        From dns Where is_response = 0
        Group by time/{bucket_seconds} as tb, qtype
    """


def flow_volume_from_netflow(bucket_seconds: int = 60,
                             name: Optional[str] = None) -> str:
    """Flows/octets per bucket of flow *start* time over a Netflow feed
    (banded-increasing handling via the order-preserving floor())."""
    return f"""
        {_named(name, 'flow_volume')}
        Select tb, count(*) as flows, sum(octets) as octets
        From netflow
        Group by floor(time_start)/{bucket_seconds} as tb
    """
