"""The overload controller: collect, decide, install, account.

Wired into :meth:`RuntimeSystem.pump`, the controller runs once per
pump cycle *before* the channels drain, so depth readings reflect the
backlog the cycle actually accumulated.  Each cycle it

1. collects a :class:`~repro.control.signals.PressureSample` from the
   signals bus,
2. asks the shedding policy for a keep-rate, and
3. installs that rate as a packet-sampling gate on every LFTA
   (any node exposing ``set_shed_rate``).

The gate is the paper's sampling "technique of last resort" made
automatic; LFTAs scale additive aggregates by 1/rate so COUNT and SUM
stay unbiased.  :meth:`OverloadController.report` is the end-to-end
drop ledger: what the NIC lost, what channels overflowed, what was shed
on purpose, and what the controller was doing about it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.control.shedding import AimdShedding, SheddingPolicy, make_policy
from repro.control.signals import PressureSample, SignalsBus, publish_sample
from repro.sim.cost_model import CostModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.stream_manager import RuntimeSystem
    from repro.nic.nic import Nic


def _channel_report(rts: "RuntimeSystem") -> Dict[str, Dict[str, Any]]:
    out: Dict[str, Dict[str, Any]] = {}
    for channel in rts.channels():
        stats = channel.stats
        capacity = channel.capacity
        out[channel.name] = {
            "depth": len(channel),
            "capacity": capacity,
            "max_depth": stats.max_depth,
            "watermark": (stats.max_depth / capacity) if capacity else 0.0,
            "pushed": stats.pushed,
            "dropped": stats.dropped,
        }
    return out


def _shed_report(rts: "RuntimeSystem") -> Dict[str, Dict[str, Any]]:
    out: Dict[str, Dict[str, Any]] = {}
    for name, node in rts.iter_nodes():
        seen = getattr(node, "packets_seen", None)
        shed = getattr(node, "shed_packets", None)
        if seen is None or shed is None:
            continue
        out[name] = {
            "packets_seen": seen,
            "packets_shed": shed,
            "shed_fraction": (shed / seen) if seen else 0.0,
            "shed_rate": getattr(node, "shed_rate", 1.0),
        }
    return out


def _containment_report(rts: "RuntimeSystem") -> Dict[str, Any]:
    """Quarantine and fault-injection accounting, shared by both ledgers.

    Losses the control plane did not *choose* still have to be in the
    ledger: packets dropped by injected faults, heartbeats an injected
    silence withheld, and nodes the RTS quarantined after a failure.
    """
    out: Dict[str, Any] = {
        "quarantined": dict(rts.quarantined),
        "fault_dropped": rts.fault_dropped,
        "heartbeats_suppressed": rts.heartbeats_suppressed,
    }
    if rts.faults:
        out["faults"] = [fault.report() for fault in rts.faults]
    return out


def overload_snapshot(rts: "RuntimeSystem") -> Dict[str, Any]:
    """Drop accounting without a controller: what was lost, uncorrected."""
    channels = _channel_report(rts)
    lftas = _shed_report(rts)
    snapshot = {
        "policy": "disabled",
        "shed_rate": 1.0,
        "channels": channels,
        "channel_dropped": sum(c["dropped"] for c in channels.values()),
        "lftas": lftas,
        "packets_shed": sum(l["packets_shed"] for l in lftas.values()),
        "shed_fraction": 0.0,
    }
    snapshot.update(_containment_report(rts))
    return snapshot


class OverloadController:
    """The control loop between the signals bus and the LFTA gates."""

    def __init__(
        self,
        rts: "RuntimeSystem",
        policy: Any = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.rts = rts
        self.policy: SheddingPolicy = (
            AimdShedding() if policy is None else make_policy(policy)
        )
        self.bus = SignalsBus(rts, cost_model=cost_model)
        self.shed_rate = 1.0
        self.min_rate_seen = 1.0
        self.cycles = 0
        self.pressured_cycles = 0
        self.last_sample: Optional[PressureSample] = None
        #: node names currently held at keep-rate 1.0 because a raised
        #: alert depends on them (AlertEngine.shed_exempt_nodes)
        self.exempt_nodes: frozenset = frozenset()
        self.exempt_cycles = 0
        rts.controller = self

    def watch_nic(self, nic: "Nic") -> None:
        self.bus.watch_nic(nic)

    # -- the control loop (called by RuntimeSystem.pump) -------------------
    def on_cycle(self, stream_time: float) -> PressureSample:
        sample = self.bus.collect(stream_time)
        self.cycles += 1
        if sample.drops_delta > 0 or sample.utilization > 1.0:
            self.pressured_cycles += 1
        rate = self.policy.update(sample)
        # A trigger raised on a feeder query pins that query's whole
        # upstream (through merges/joins down to its LFTAs) at keep-rate
        # 1.0 until the alert CLEARs: while the system is reporting an
        # incident, the evidence for it is not thinned.  Exemption takes
        # effect the cycle after the RAISE (triggers evaluate during the
        # drain, after this hook ran).
        alert_engine = getattr(self.rts, "alert_engine", None)
        exempt = (frozenset(alert_engine.shed_exempt_nodes())
                  if alert_engine is not None else frozenset())
        if exempt:
            self.exempt_cycles += 1
        if rate != self.shed_rate or exempt != self.exempt_nodes:
            self._install(rate, exempt)
        self.exempt_nodes = exempt
        self.shed_rate = rate
        if rate < self.min_rate_seen:
            self.min_rate_seen = rate
        self.last_sample = sample
        registry = getattr(self.rts, "metrics", None)
        if registry is not None:
            # Pressure and shed-rate signals double as scrapeable gauges
            # instead of living only in the private report dict.
            publish_sample(registry, sample, controller=self)
        return sample

    def _install(self, rate: float,
                 exempt: frozenset = frozenset()) -> None:
        for name, node in self.rts.iter_nodes():
            set_rate = getattr(node, "set_shed_rate", None)
            if set_rate is not None:
                set_rate(1.0 if name in exempt else rate)

    # -- telemetry ----------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        """The end-to-end overload ledger (see ``Gigascope.overload_report``)."""
        channels = _channel_report(self.rts)
        lftas = _shed_report(self.rts)
        seen = sum(l["packets_seen"] for l in lftas.values())
        shed = sum(l["packets_shed"] for l in lftas.values())
        report: Dict[str, Any] = {
            "policy": self.policy.name,
            "policy_state": self.policy.describe(),
            "shed_rate": self.shed_rate,
            "min_shed_rate": self.min_rate_seen,
            "cycles": self.cycles,
            "pressured_cycles": self.pressured_cycles,
            "packets_seen": seen,
            "packets_shed": shed,
            "shed_fraction": (shed / seen) if seen else 0.0,
            "exempt_nodes": sorted(self.exempt_nodes),
            "exempt_cycles": self.exempt_cycles,
            "lftas": lftas,
            "channels": channels,
            "channel_dropped": sum(c["dropped"] for c in channels.values()),
            "utilization": {
                "last": (self.last_sample.utilization
                         if self.last_sample else 0.0),
                "peak": self.bus.peak_utilization,
            },
            "peak_fill": self.bus.peak_fill,
        }
        report.update(_containment_report(self.rts))
        if self.bus.nics:
            report["nic"] = {
                "received": sum(n.stats.received for n in self.bus.nics),
                "ring_dropped": sum(n.stats.ring_dropped
                                    for n in self.bus.nics),
            }
        return report
