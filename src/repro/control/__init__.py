"""The overload control plane.

Gigascope must survive overload: the Tigon ring drops packets when the
host falls behind, merge buffers overflow on bursty streams (Section 3),
and the paper's answer is sampling plus careful accounting of what was
lost.  This package observes the reproduction's own loss model and
reacts to it:

* :mod:`repro.control.signals` -- a bus that samples pressure
  indicators (channel depth and drop counters, per-node tuple rates,
  NIC ring drops, estimated host utilization) each pump cycle;
* :mod:`repro.control.shedding` -- pluggable policies (none / static /
  adaptive AIMD) that turn a pressure sample into a keep-rate;
* :mod:`repro.control.controller` -- the loop that collects, decides,
  and installs the packet-sampling gate on every LFTA, with end-to-end
  drop accounting via :meth:`OverloadController.report`.
"""

from repro.control.controller import OverloadController, overload_snapshot
from repro.control.shedding import (
    AimdShedding,
    NoShedding,
    SheddingPolicy,
    StaticShedding,
    make_policy,
)
from repro.control.signals import ChannelSignal, PressureSample, SignalsBus

__all__ = [
    "AimdShedding",
    "ChannelSignal",
    "NoShedding",
    "OverloadController",
    "PressureSample",
    "SheddingPolicy",
    "SignalsBus",
    "StaticShedding",
    "make_policy",
    "overload_snapshot",
]
