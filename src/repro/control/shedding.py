"""Shedding policies: pressure sample in, keep-rate out.

"A sufficiently complex query workload will require sampling and
approximation, but it is a technique of last resort" (Section 4) -- so
the default policy keeps everything and only accounts for losses, the
static policy is the analyst-controlled rate of ``DEFINE sample p``
applied system-wide, and the adaptive policy is a TCP-style AIMD loop:
halve the keep-rate under sustained pressure, creep back up additively
once the pressure clears.  Results remain statistically meaningful
because the LFTAs scale additive aggregates by 1/rate at update time
(Horvitz-Thompson), so COUNT/SUM estimates stay unbiased even while the
rate moves.
"""

from __future__ import annotations

from repro.control.signals import PressureSample


class SheddingPolicy:
    """Base policy: maps one :class:`PressureSample` to a keep-rate."""

    name = "base"

    def update(self, sample: PressureSample) -> float:
        """Return the keep-rate in (0, 1] the LFTA gates should use."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class NoShedding(SheddingPolicy):
    """Observe and account only; never drop on purpose."""

    name = "none"

    def update(self, sample: PressureSample) -> float:
        return 1.0


class StaticShedding(SheddingPolicy):
    """A fixed keep-rate, chosen by the analyst."""

    name = "static"

    def __init__(self, rate: float) -> None:
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"static shed rate must be in (0, 1], got {rate}")
        self.rate = rate

    def update(self, sample: PressureSample) -> float:
        return self.rate

    def describe(self) -> str:
        return f"static:{self.rate}"


class AimdShedding(SheddingPolicy):
    """Additive-increase / multiplicative-decrease adaptive shedding.

    Pressure means: a bounded channel at or above ``high_fill``, new
    drops anywhere (channels or NIC ring), or estimated utilization
    above 1.0.  After ``trigger_cycles`` consecutive pressured cycles
    the keep-rate is multiplied by ``decrease`` (floored at
    ``min_rate``); after ``relief_cycles`` consecutive calm cycles
    (fill at or below ``low_fill``, no new drops) it recovers by
    ``increase`` per step, up to 1.0.
    """

    name = "adaptive"

    def __init__(
        self,
        high_fill: float = 0.8,
        low_fill: float = 0.3,
        decrease: float = 0.5,
        increase: float = 0.05,
        min_rate: float = 0.05,
        trigger_cycles: int = 2,
        relief_cycles: int = 3,
    ) -> None:
        if not 0.0 < min_rate <= 1.0:
            raise ValueError("min_rate must be in (0, 1]")
        if not 0.0 < decrease < 1.0:
            raise ValueError("decrease must be in (0, 1)")
        self.high_fill = high_fill
        self.low_fill = low_fill
        self.decrease = decrease
        self.increase = increase
        self.min_rate = min_rate
        self.trigger_cycles = trigger_cycles
        self.relief_cycles = relief_cycles
        self.rate = 1.0
        self._pressured_streak = 0
        self._calm_streak = 0

    def pressured(self, sample: PressureSample) -> bool:
        return (sample.max_fill >= self.high_fill
                or sample.drops_delta > 0
                or sample.utilization > 1.0)

    def _calm(self, sample: PressureSample) -> bool:
        return (sample.max_fill <= self.low_fill
                and sample.drops_delta == 0
                and sample.utilization <= 1.0)

    def update(self, sample: PressureSample) -> float:
        if self.pressured(sample):
            self._pressured_streak += 1
            self._calm_streak = 0
            if self._pressured_streak >= self.trigger_cycles:
                self.rate = max(self.min_rate, self.rate * self.decrease)
                self._pressured_streak = 0
        elif self._calm(sample):
            self._calm_streak += 1
            self._pressured_streak = 0
            if self._calm_streak >= self.relief_cycles and self.rate < 1.0:
                self.rate = min(1.0, self.rate + self.increase)
                self._calm_streak = 0
        else:
            # In the hysteresis band: hold the rate, reset both streaks.
            self._pressured_streak = 0
            self._calm_streak = 0
        return self.rate

    def describe(self) -> str:
        return f"adaptive(rate={self.rate:.3f})"


def make_policy(spec) -> SheddingPolicy:
    """Build a policy from a spec: a policy, ``"none"``, ``"adaptive"``,
    or ``"static:RATE"`` (the CLI's ``--shed`` grammar)."""
    if isinstance(spec, SheddingPolicy):
        return spec
    if not isinstance(spec, str):
        raise ValueError(f"bad shedding policy spec {spec!r}")
    name, _, arg = spec.partition(":")
    name = name.strip().lower()
    if name == "none":
        return NoShedding()
    if name == "adaptive":
        return AimdShedding()
    if name == "static":
        try:
            rate = float(arg)
        except ValueError:
            raise ValueError(
                f"bad static shed rate {arg!r}; use static:RATE") from None
        return StaticShedding(rate)
    raise ValueError(
        f"unknown shedding policy {spec!r}; use none, static:RATE, or adaptive"
    )
