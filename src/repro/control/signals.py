"""The pressure-signals bus: what the control plane can see.

Every pump cycle the bus snapshots the resource indicators the rest of
the stack already maintains but nothing previously observed:

* channel depth, capacity, and drop counters (:mod:`repro.core.channels`),
* per-node tuple rates (:class:`~repro.core.stream_manager.RuntimeSystem`
  node statistics),
* NIC ring drops (:class:`repro.nic.nic.NicStats.ring_dropped`), and
* estimated host CPU utilization in virtual time, from the packet/byte
  rates and the :class:`~repro.sim.cost_model.CostModel` per-packet
  receive cost.

Counters are cumulative; the bus differences them against the previous
cycle so policies see *rates*, not lifetime totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.sim.cost_model import CostModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.stream_manager import RuntimeSystem
    from repro.nic.nic import Nic


@dataclass
class ChannelSignal:
    """One channel's pressure contribution for one cycle."""

    name: str
    depth: int
    capacity: Optional[int]
    fill: float  # depth / capacity; 0.0 for unbounded channels
    dropped_total: int
    dropped_delta: int
    max_depth: int


@dataclass
class PressureSample:
    """Everything a shedding policy gets to look at, one cycle's worth."""

    stream_time: float
    cycle: int
    channels: List[ChannelSignal] = field(default_factory=list)
    max_fill: float = 0.0
    channel_drops_total: int = 0
    channel_drops_delta: int = 0
    nic_drops_total: int = 0
    nic_drops_delta: int = 0
    #: packets/second of stream time since the previous sample
    packet_rate: float = 0.0
    #: per-node output tuples/second since the previous sample
    node_rates: Dict[str, float] = field(default_factory=dict)
    #: estimated host CPU utilization (1.0 = saturated) in virtual time
    utilization: float = 0.0

    @property
    def drops_delta(self) -> int:
        """New losses anywhere in the stack since the last cycle."""
        return self.channel_drops_delta + self.nic_drops_delta


def publish_sample(registry, sample: PressureSample,
                   controller=None) -> None:
    """Re-export one cycle's pressure signals as registry gauges.

    The control plane used to be observable only through the private
    dict of ``overload_report``; with a metrics registry on the RTS
    every signal a policy sees is also a scrapeable gauge
    (``gs_pressure_*``, ``gs_shed_rate``, ``gs_node_rate``).
    """
    registry.gauge("gs_pressure_utilization",
                   "estimated host CPU utilization in virtual time "
                   "(1.0 = saturated)").set(sample.utilization)
    registry.gauge("gs_pressure_max_fill",
                   "worst channel depth/capacity this cycle"
                   ).set(sample.max_fill)
    registry.gauge("gs_pressure_packet_rate",
                   "packets/second of stream time since the last cycle"
                   ).set(sample.packet_rate)
    registry.gauge("gs_pressure_drops_delta",
                   "new losses anywhere in the stack this cycle"
                   ).set(sample.drops_delta)
    registry.counter("gs_pressure_channel_drops_total",
                     "cumulative channel overflow drops"
                     ).set(sample.channel_drops_total)
    registry.counter("gs_pressure_nic_drops_total",
                     "cumulative NIC ring drops"
                     ).set(sample.nic_drops_total)
    rates = registry.gauge("gs_node_rate",
                           "per-node output tuples/second of stream time",
                           labels=("node",))
    rates.clear()
    for name, rate in sample.node_rates.items():
        rates.labels(node=name).set(rate)
    if controller is not None:
        registry.gauge("gs_shed_rate",
                       "keep-rate installed on the LFTA sampling gates "
                       "(1.0 = no shedding)").set(controller.shed_rate)
        registry.gauge("gs_shed_min_rate",
                       "lowest keep-rate seen").set(controller.min_rate_seen)
        registry.counter("gs_control_cycles_total",
                         "control-loop cycles run").set(controller.cycles)
        registry.counter("gs_control_pressured_cycles_total",
                         "cycles with drops or utilization > 1"
                         ).set(controller.pressured_cycles)


class SignalsBus:
    """Collects :class:`PressureSample` snapshots from a running RTS."""

    def __init__(self, rts: "RuntimeSystem",
                 cost_model: Optional[CostModel] = None) -> None:
        self.rts = rts
        self.cost_model = cost_model or CostModel()
        self.nics: List["Nic"] = []
        self.cycle = 0
        self.peak_utilization = 0.0
        self.peak_fill = 0.0
        self._last_channel_drops: Dict[int, int] = {}
        self._last_node_out: Dict[str, int] = {}
        self._last_nic_drops = 0
        self._last_packets = 0
        self._last_bytes = 0
        self._last_time: Optional[float] = None

    def watch_nic(self, nic: "Nic") -> None:
        """Include a simulated NIC's ring drops in the pressure signal."""
        self.nics.append(nic)

    def collect(self, stream_time: float) -> PressureSample:
        """Snapshot all signals and difference them against last cycle."""
        self.cycle += 1
        sample = PressureSample(stream_time=stream_time, cycle=self.cycle)

        for channel in self.rts.channels():
            stats = channel.stats
            key = id(channel)
            delta = stats.dropped - self._last_channel_drops.get(key, 0)
            self._last_channel_drops[key] = stats.dropped
            depth = len(channel)
            fill = depth / channel.capacity if channel.capacity else 0.0
            sample.channels.append(ChannelSignal(
                name=channel.name, depth=depth, capacity=channel.capacity,
                fill=fill, dropped_total=stats.dropped, dropped_delta=delta,
                max_depth=stats.max_depth,
            ))
            sample.channel_drops_total += stats.dropped
            sample.channel_drops_delta += delta
            if fill > sample.max_fill:
                sample.max_fill = fill

        for nic in self.nics:
            sample.nic_drops_total += nic.stats.ring_dropped
        sample.nic_drops_delta = sample.nic_drops_total - self._last_nic_drops
        self._last_nic_drops = sample.nic_drops_total

        elapsed = (stream_time - self._last_time
                   if self._last_time is not None else 0.0)
        packets = self.rts.packets_fed - self._last_packets
        nbytes = self.rts.bytes_fed - self._last_bytes
        for name, node in self.rts.iter_nodes():
            out = node.stats.tuples_out
            previous = self._last_node_out.get(name, 0)
            self._last_node_out[name] = out
            if elapsed > 0:
                sample.node_rates[name] = (out - previous) / elapsed
        if elapsed > 0 and packets > 0:
            sample.packet_rate = packets / elapsed
            mean_caplen = nbytes / packets
            busy_us = packets * self.cost_model.packet_cpu_us(mean_caplen)
            sample.utilization = busy_us / (elapsed * 1e6)
        self._last_time = stream_time
        self._last_packets = self.rts.packets_fed
        self._last_bytes = self.rts.bytes_fed

        if sample.utilization > self.peak_utilization:
            self.peak_utilization = sample.utilization
        if sample.max_fill > self.peak_fill:
            self.peak_fill = sample.max_fill
        return sample
