"""The replication log frame codec (DESIGN section 16).

A replication log is a sequence of **frames**.  Each frame is one GSCK
blob (:mod:`repro.recovery.wire`: magic, version, checksummed payload)
whose payload is a dict:

``{"v", "kind", "seq", "time", "cursor", "counters", "nodes"}``

* ``v`` -- the replication-log layout version (checked on top of the
  GSCK wire version, which covers the value encoding itself).
* ``kind`` -- ``"full"`` for the epoch-opening snapshot of every node,
  ``"delta"`` for the per-cadence frames that carry only the nodes
  whose encoded state changed since the previous frame.
* ``seq`` -- dense frame sequence number starting at 0; the applier
  refuses gaps, duplicates, and reordering.
* ``time`` -- the virtual (stream) time of the quiescent pump boundary
  the frame was cut at.
* ``cursor`` -- how many packets the primary had been handed when the
  frame was cut: the journal-tail replay point after a promotion.
* ``counters`` -- the RTS-level counters
  (:meth:`repro.core.stream_manager.RuntimeSystem.counters_state`).
* ``nodes`` -- ``{node_name: gsck_blob}``: each node's
  ``snapshot_state()`` independently GSCK-encoded, so every node state
  carries its own checksum and a corrupt node names itself.

Failure is typed and total: a frame that cannot be fully decoded and
validated raises one of the :class:`FrameError` subclasses below --
naming the offending frame -- and **must never be applied partially**
(the applier decodes everything before it touches any operator).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.recovery.wire import (
    SnapshotCorruptError,
    SnapshotError,
    SnapshotVersionError,
    decode_snapshot,
    encode_snapshot,
)

#: Version of the frame layout described above.  Bump it whenever the
#: payload structure changes; a standby refuses frames from any other
#: version instead of misreading them.
REPLICATION_VERSION = 1

FRAME_KINDS = ("full", "delta")

_REQUIRED_KEYS = ("v", "kind", "seq", "time", "cursor", "counters", "nodes")


class ReplicationError(Exception):
    """Base class for every replication-plane failure."""


class FrameError(ReplicationError):
    """A replication-log frame was refused; names the frame."""

    def __init__(self, frame: Any, message: str) -> None:
        self.frame = frame
        super().__init__(f"replication frame {frame}: {message}")


class FrameCorruptError(FrameError):
    """The frame's bytes (or one node blob inside it) fail validation."""


class FrameVersionError(FrameError):
    """The frame was cut under a different (stale or future) version."""


class FrameSequenceError(FrameError):
    """The frame arrived out of order: a gap, duplicate, or rewind."""


def encode_frame(kind: str, seq: int, time: float, cursor: int,
                 counters: Dict[str, Any],
                 nodes: Dict[str, bytes]) -> bytes:
    """Encode one replication frame as a checksummed GSCK blob."""
    if kind not in FRAME_KINDS:
        raise ReplicationError(f"unknown frame kind {kind!r}")
    return encode_snapshot({
        "v": REPLICATION_VERSION,
        "kind": kind,
        "seq": seq,
        "time": time,
        "cursor": cursor,
        "counters": counters,
        "nodes": nodes,
    })


def decode_frame(blob: bytes, expect: Any = "?") -> Dict[str, Any]:
    """Decode and structurally validate one frame; typed errors only.

    ``expect`` labels the error when the frame is too damaged to name
    itself (a truncated header has no readable ``seq``); the applier
    passes the sequence number it was expecting.
    """
    try:
        frame = decode_snapshot(blob)
    except SnapshotVersionError as error:
        raise FrameVersionError(expect, str(error)) from error
    except SnapshotCorruptError as error:
        raise FrameCorruptError(expect, str(error)) from error
    except SnapshotError as error:
        raise FrameCorruptError(expect, str(error)) from error
    if not isinstance(frame, dict):
        raise FrameCorruptError(expect, "payload is not a frame dict")
    missing = [key for key in _REQUIRED_KEYS if key not in frame]
    if missing:
        raise FrameCorruptError(frame.get("seq", expect),
                                f"missing field(s) {missing}")
    label = frame["seq"]
    if frame["v"] != REPLICATION_VERSION:
        raise FrameVersionError(
            label, f"layout version {frame['v']} != "
                   f"supported {REPLICATION_VERSION}")
    if frame["kind"] not in FRAME_KINDS:
        raise FrameCorruptError(label, f"unknown kind {frame['kind']!r}")
    if not isinstance(frame["seq"], int) or frame["seq"] < 0:
        raise FrameCorruptError(expect, f"bad seq {frame['seq']!r}")
    if not isinstance(frame["nodes"], dict):
        raise FrameCorruptError(label, "nodes field is not a dict")
    for name, node_blob in frame["nodes"].items():
        if not isinstance(node_blob, bytes):
            raise FrameCorruptError(
                label, f"node {name!r} state is not an encoded blob")
    return frame
