"""Primary + warm standby with promote-on-failure (DESIGN section 16).

:class:`ReplicatedGigascope` runs two identically configured engines.
The **primary** processes the packet stream; a
:class:`~repro.replication.shipper.ReplicationShipper` on its RTS cuts
checksummed, seq-numbered frames at quiescent pump boundaries and the
**standby** applies each one into live operator state
(:class:`~repro.replication.replica.StandbyReplica`), so the standby
is always the primary as of the last good frame.

Promotion -- triggered by an injected hard crash (testing) or by the
heartbeat-silence detector (``promote_after``) -- follows a fixed
protocol:

1. the primary is declared dead; its subscription channels are drained
   one last time (rows already emitted into our process survive the
   primary's death and count as delivered);
2. the standby's journal tail is the retained packet list from the
   last applied frame's ``cursor``: re-feeding it replays exactly the
   window the frames missed;
3. exactly-once output: the standby's restored per-node ``tuples_out``
   says how many rows it will regenerate that were already delivered,
   so each subscription arms a skip gate for the difference -- the
   same delivered-minus-restored arithmetic as the recovery
   supervisor's emit gates, applied at the subscription boundary;
4. the feed resumes on the standby from the cursor, then continues
   with the rest of the stream.

Because a run is a pure function of (queries, packets, seed) and a
subscription's row sequence after K packets is a deterministic prefix
of the canonical sequence regardless of pump timing, the promoted
standby's output is byte-identical to an uninterrupted primary --
enforced by ``replay verify-failover`` across hash seeds and crash
points (including a crash mid-frame: a torn frame is refused by the
applier, typed and total, and promotion falls back one frame).
"""

from __future__ import annotations

import math
import os
import struct
from time import perf_counter
from typing import Any, Dict, List, Optional

from repro.core.engine import Gigascope
from repro.replication.log import ReplicationError
from repro.replication.replica import StandbyReplica
from repro.replication.shipper import ReplicationShipper

#: Default virtual-time seconds between delta frames.
DEFAULT_CADENCE = 1.0


def resolve_replicate_cadence(value: Optional[Any] = None) -> Optional[float]:
    """Resolve the replication cadence knob (arg beats ``GS_REPLICATE``).

    Returns None when replication is not requested anywhere.  Raises
    ``ValueError`` on a malformed or negative cadence -- the CLI turns
    that into a usage error (exit 2), same as every other knob.
    """
    source = "--replicate"
    if value is None:
        raw = os.environ.get("GS_REPLICATE", "").strip()
        if not raw:
            return None
        value, source = raw, "GS_REPLICATE"
    try:
        cadence = float(value)
    except (TypeError, ValueError):
        raise ValueError(f"{source} must be a number of virtual seconds, "
                         f"got {value!r}")
    if cadence < 0 or math.isnan(cadence) or math.isinf(cadence):
        raise ValueError(f"{source} must be >= 0 and finite, got {value!r}")
    return cadence


def parse_crash_spec(text: str) -> Dict[str, Any]:
    """Parse a failover crash spec.

    ``packet:K``       -- the primary dies right after packet index K
                          (mid delta-interval);
    ``frame:N``        -- the primary dies right after shipping frame N
                          (a snapshot/delta boundary);
    ``frame:N:torn``   -- frame N is written truncated (a crash
                          mid-frame), then the primary dies: the
                          standby refuses the torn frame and promotion
                          falls back to frame N-1.
    """
    parts = text.split(":")
    if len(parts) < 2 or parts[0] not in ("packet", "frame"):
        raise ValueError(f"bad crash spec {text!r}; use packet:K, "
                         f"frame:N, or frame:N:torn")
    torn = False
    if len(parts) == 3:
        if parts[0] != "frame" or parts[2] != "torn":
            raise ValueError(f"bad crash spec {text!r}; only frame:N:torn "
                             f"takes a third field")
        torn = True
    elif len(parts) != 2:
        raise ValueError(f"bad crash spec {text!r}")
    try:
        at = int(parts[1])
    except ValueError:
        raise ValueError(f"bad crash spec {text!r}: {parts[1]!r} is not "
                         f"an integer")
    if at < 0:
        raise ValueError(f"bad crash spec {text!r}: index must be >= 0")
    return {"kind": parts[0], "at": at, "torn": torn}


class FailoverSubscription:
    """A subscription that survives promotion with exactly-once rows."""

    def __init__(self, name: str, inner) -> None:
        self.name = name
        self._inner = inner
        self._pending: List[tuple] = []
        #: rows drained from an engine so far -- delivered into this
        #: process, whether or not the application polled them yet
        self.delivered = 0
        #: regenerated rows still to drop after a promotion
        self.skip = 0
        #: rows actually dropped by the gate (exactly-once accounting)
        self.suppressed = 0
        self.ended = False

    def _drain(self) -> None:
        rows = self._inner.poll()
        if self.skip:
            gated = min(self.skip, len(rows))
            rows = rows[gated:]
            self.skip -= gated
            self.suppressed += gated
        self._pending.extend(rows)
        self.delivered += len(rows)
        if self._inner.ended:
            self.ended = True

    def poll(self) -> List[tuple]:
        """All data tuples received since the last poll."""
        self._drain()
        rows = self._pending
        self._pending = []
        return rows

    def _promote(self, inner, regenerated: int) -> None:
        """Swap to the standby's channel, arming the skip gate."""
        self._drain()  # final drain: pre-crash rows survive in-process
        self._inner = inner
        self.skip = self.delivered - regenerated
        if self.skip < 0:
            raise ReplicationError(
                f"subscription {self.name!r}: standby ahead of delivery "
                f"({regenerated} regenerated vs {self.delivered} "
                f"delivered)")
        self.ended = False


class ReplicatedGigascope:
    """A primary/warm-standby engine pair behind the Gigascope API."""

    def __init__(self, cadence: float = DEFAULT_CADENCE,
                 promote_after: Optional[float] = None,
                 crash: Optional[str] = None,
                 log_path: Optional[str] = None,
                 **engine_kwargs: Any) -> None:
        if promote_after is not None and promote_after < 0:
            raise ValueError(f"promote_after must be >= 0, "
                             f"got {promote_after}")
        self.primary = Gigascope(**engine_kwargs)
        self.standby = Gigascope(**engine_kwargs)
        self.replica = StandbyReplica(self.standby)
        self.shipper = ReplicationShipper(self.primary.rts, cadence,
                                          self._deliver)
        self.primary.rts.replicator = self.shipper
        self.promote_after = promote_after
        self._crash = parse_crash_spec(crash) if crash else None
        self._log_file = open(log_path, "wb") if log_path else None
        #: every frame as shipped (torn bytes included), for artifacts
        self.log_frames: List[bytes] = []
        self.apply_errors: List[str] = []
        self._subs: Dict[str, FailoverSubscription] = {}
        self._packets: List[Any] = []
        self._fed = 0
        self.promoted = False
        self.failure_reason: Optional[str] = None
        self._pending_failure: Optional[str] = None
        self.promotions = 0
        self.replayed_packets = 0
        self.promote_wall_s = 0.0
        #: virtual-time window the promotion rolled back (crash time
        #: minus the last applied frame's time): the recovery point
        self.rpo_virtual_s = 0.0
        self.rpo_packets = 0
        for registry in (self.primary.metrics, self.standby.metrics):
            if registry is not None:
                from repro.obs.collectors import install_replication_metrics
                install_replication_metrics(registry, self)

    # -- engine facade -------------------------------------------------------
    @property
    def engine(self) -> Gigascope:
        """The engine currently serving the feed."""
        return self.standby if self.promoted else self.primary

    @property
    def rts(self):
        return self.engine.rts

    @property
    def metrics(self):
        return self.engine.metrics

    def add_query(self, text: str, params: Optional[Dict] = None,
                  name: Optional[str] = None) -> str:
        result = self.primary.add_query(text, params=params, name=name)
        self.standby.add_query(text, params=params, name=name)
        return result

    def add_queries(self, text: str, params: Optional[Dict] = None):
        names = self.primary.add_queries(text, params=params)
        self.standby.add_queries(text, params=params)
        return names

    def explain(self, name: str) -> str:
        return self.primary.explain(name)

    def schema_of(self, name: str):
        return self.engine.schema_of(name)

    def stats(self):
        return self.engine.stats()

    def subscribe(self, name: str,
                  capacity: Optional[int] = None) -> FailoverSubscription:
        sub = FailoverSubscription(
            name, self.primary.subscribe(name, capacity=capacity))
        self._subs[name] = sub
        return sub

    def inject_faults(self, faults) -> None:
        """Faults arm on the primary only: they are the failure source."""
        self.primary.inject_faults(faults)

    def fault_report(self):
        return self.primary.fault_report()

    def start(self) -> None:
        self.primary.start()
        self.standby.start()

    # -- the replication stream ---------------------------------------------
    def _deliver(self, frame: bytes) -> None:
        seq = self.shipper.seq - 1  # the frame just cut
        crash = self._crash
        if (crash is not None and crash["kind"] == "frame"
                and crash["torn"] and seq == crash["at"]):
            # A crash mid-frame: the log ends in a truncated write.
            frame = frame[: max(1, len(frame) // 2)]
        self.log_frames.append(frame)
        if self._log_file is not None:
            self._log_file.write(struct.pack(">I", len(frame)))
            self._log_file.write(frame)
        try:
            self.replica.apply(frame)
        except ReplicationError as error:
            # A refused frame is recorded, never half-applied; the
            # standby stays at the previous frame.
            self.apply_errors.append(str(error))
        if (crash is not None and crash["kind"] == "frame"
                and seq == crash["at"]):
            self._pending_failure = (
                f"crash injected after frame {seq}"
                + (" (torn mid-write)" if crash["torn"] else ""))

    # -- feeding and failure detection ---------------------------------------
    def feed(self, packets, pump_every: int = 256) -> None:
        self._packets.extend(packets)
        total = len(self._packets)
        while self._fed < total:
            engine = self.engine
            # Slices end on the canonical pump_every grid so batch
            # blocks and pump boundaries land on the same packets as
            # one uninterrupted feed would put them.
            end = min((self._fed // pump_every + 1) * pump_every, total)
            if not self.promoted and self._crash is not None \
                    and self._crash["kind"] == "packet" \
                    and self._fed <= self._crash["at"] < end:
                end = self._crash["at"]
                if end > self._fed:
                    engine.feed(self._packets[self._fed:end],
                                pump_every=pump_every)
                self._fed = end
                self._promote(f"crash injected at packet {end}")
                continue
            engine.feed(self._packets[self._fed:end],
                        pump_every=pump_every)
            self._fed = end
            if not self.promoted:
                if self._pending_failure is not None:
                    reason, self._pending_failure = self._pending_failure, \
                        None
                    self._promote(reason)
                elif self._silence_detected():
                    rts = self.primary.rts
                    self._promote(
                        f"heartbeat silence: no heartbeat since "
                        f"t={rts._last_heartbeat:.3f} at "
                        f"t={rts.stream_time:.3f}")

    def feed_packet(self, packet) -> None:
        self.feed([packet], pump_every=1)

    def _silence_detected(self) -> bool:
        if self.promote_after is None:
            return False
        rts = self.primary.rts
        interval = rts.heartbeat_interval
        if interval is None:
            return False
        now, last = rts.stream_time, rts._last_heartbeat
        if math.isinf(now) or math.isinf(last):
            return False
        return now - last > interval + self.promote_after

    # -- promotion -----------------------------------------------------------
    def _promote(self, reason: str) -> None:
        began = perf_counter()
        self.failure_reason = reason
        crash_time = self.primary.rts.stream_time
        if not math.isinf(crash_time) \
                and not math.isinf(self.replica.applied_time):
            self.rpo_virtual_s = crash_time - self.replica.applied_time
        cursor = self.replica.cursor
        self.rpo_packets = self._fed - cursor
        self.replayed_packets = self.rpo_packets
        standby = self.standby
        for name, sub in self._subs.items():
            inner = standby.subscribe(name)
            regenerated = standby.rts.node(name).stats.tuples_out
            sub._promote(inner, regenerated)
        self.promoted = True
        self.promotions += 1
        self._fed = cursor
        self.promote_wall_s = perf_counter() - began

    # -- end of stream -------------------------------------------------------
    def flush(self) -> None:
        self.engine.flush()
        for sub in self._subs.values():
            sub._drain()
        if self._log_file is not None:
            self._log_file.close()
            self._log_file = None

    # -- reporting -----------------------------------------------------------
    @property
    def suppressed_rows(self) -> int:
        return sum(sub.suppressed for sub in self._subs.values())

    def replication_report(self) -> Dict[str, Any]:
        report = self.shipper.report()
        report.update(self.replica.report())
        report.update(
            promoted=self.promoted,
            promotions=self.promotions,
            failure_reason=self.failure_reason,
            replayed_packets=self.replayed_packets,
            suppressed_rows=self.suppressed_rows,
            rpo_packets=self.rpo_packets,
            rpo_virtual_s=self.rpo_virtual_s,
            promote_wall_s=self.promote_wall_s,
            apply_error_log=list(self.apply_errors),
        )
        return report

    def recovery_report(self):
        return self.engine.recovery_report()

    def alert_report(self):
        return self.engine.alert_report()

    def telemetry_report(self):
        return self.engine.telemetry_report()

    def overload_report(self):
        return self.engine.overload_report()
