"""Continuous replication and warm-standby failover (DESIGN section 16).

PR 5's checkpoints are local and stop-the-world at pump boundaries: a
process loss still forfeits everything since the last snapshot.  This
package extends the GSCK wire format (:mod:`repro.recovery.wire`) into
an incremental, checksummed, seq-numbered **replication log** -- a full
snapshot epoch followed by per-cadence delta frames cut at the same
quiescent pump boundaries the recovery supervisor uses -- streamed
continuously from a primary engine to a warm standby that applies each
frame into live operator state through the existing ``snapshot_state``
/ ``restore_state`` contract.

* :mod:`repro.replication.log` -- the frame codec and its typed error
  family (corrupt / stale-version / out-of-order frames are refused by
  name, never applied partially).
* :mod:`repro.replication.shipper` -- the primary-side
  :class:`ReplicationShipper`, hooked on the RTS as ``rts.replicator``
  and invoked at every pump boundary.
* :mod:`repro.replication.replica` -- the :class:`StandbyReplica`
  applier over a live, started engine.
* :mod:`repro.replication.failover` -- :class:`ReplicatedGigascope`,
  the primary+standby pair with heartbeat-silence detection,
  promote-on-failure, journal-tail replay, and exactly-once delivery
  gating; byte-identical to an uninterrupted run (``replay
  verify-failover``).
"""

from repro.replication.log import (
    REPLICATION_VERSION,
    FrameCorruptError,
    FrameError,
    FrameSequenceError,
    FrameVersionError,
    ReplicationError,
    decode_frame,
    encode_frame,
)
from repro.replication.failover import (
    DEFAULT_CADENCE,
    ReplicatedGigascope,
    parse_crash_spec,
    resolve_replicate_cadence,
)
from repro.replication.replica import StandbyReplica
from repro.replication.shipper import ReplicationShipper

__all__ = [
    "DEFAULT_CADENCE",
    "REPLICATION_VERSION",
    "ReplicationError",
    "FrameError",
    "FrameCorruptError",
    "FrameSequenceError",
    "FrameVersionError",
    "encode_frame",
    "decode_frame",
    "ReplicationShipper",
    "StandbyReplica",
    "ReplicatedGigascope",
    "parse_crash_spec",
    "resolve_replicate_cadence",
]
