"""The warm-standby applier (DESIGN section 16).

A :class:`StandbyReplica` wraps a live, started engine whose query set
matches the primary's, and applies replication frames into its
operator state through the ``snapshot_state``/``restore_state``
contract -- keeping the standby *warm*: at any moment its state equals
the primary's as of the last applied frame, and promotion is just
"resume the feed from the frame's cursor".

Apply is **all-or-nothing**.  Every check -- frame checksum, layout
version, sequence order, node-name resolution, per-node blob decode --
happens before the first ``restore_state`` call, so a refused frame
(typed :class:`~repro.replication.log.FrameError`, naming the frame)
leaves the standby exactly where the previous frame left it.
"""

from __future__ import annotations

import math
from typing import Any, Dict

from repro.recovery.wire import SnapshotError, decode_snapshot
from repro.replication.log import (
    FrameCorruptError,
    FrameSequenceError,
    decode_frame,
)


class StandbyReplica:
    """Applies a replication log into a live engine's operator state."""

    def __init__(self, engine) -> None:
        self.engine = engine
        self.applied_seq = -1
        self.applied_time = -math.inf
        #: journal-tail replay point: packets the primary had been
        #: handed as of the last applied frame
        self.cursor = 0
        self.frames_applied = 0
        self.apply_errors = 0

    def apply(self, blob: bytes) -> Dict[str, Any]:
        """Validate and apply one frame; returns the decoded frame.

        Raises a typed :class:`~repro.replication.log.FrameError` --
        and leaves the standby untouched -- on any refusal.
        """
        expected = self.applied_seq + 1
        try:
            frame = decode_frame(blob, expect=expected)
            if frame["seq"] != expected:
                raise FrameSequenceError(
                    frame["seq"], f"out of order: expected seq {expected}")
            if frame["kind"] == "full" and self.applied_seq >= 0:
                raise FrameSequenceError(
                    frame["seq"], "full epoch after frames were applied")
            if frame["kind"] == "delta" and self.applied_seq < 0:
                raise FrameSequenceError(
                    frame["seq"], "delta before any full epoch")
            states = self._decode_states(frame)
        except Exception:
            self.apply_errors += 1
            raise
        # Everything decoded and validated; only now touch live state.
        rts = self.engine.rts
        for name, state in states.items():
            rts.node(name).restore_state(state)
        rts.restore_counters(frame["counters"])
        self.applied_seq = frame["seq"]
        self.applied_time = frame["time"]
        self.cursor = frame["cursor"]
        self.frames_applied += 1
        return frame

    def _decode_states(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        label = frame["seq"]
        rts = self.engine.rts
        known = dict(rts.iter_nodes())
        states: Dict[str, Any] = {}
        for name, node_blob in frame["nodes"].items():
            if name not in known:
                raise FrameCorruptError(
                    label, f"unknown node {name!r} (standby query set "
                           f"does not match the primary)")
            try:
                states[name] = decode_snapshot(node_blob)
            except SnapshotError as error:
                raise FrameCorruptError(
                    label, f"node {name!r}: {error}") from error
        if frame["kind"] == "full":
            missing = sorted(set(known) - set(states))
            if missing:
                raise FrameCorruptError(
                    label, f"full epoch missing node(s) {missing}")
        return states

    def report(self) -> Dict[str, Any]:
        return {
            "applied_seq": self.applied_seq,
            "applied_time": self.applied_time,
            "cursor": self.cursor,
            "frames_applied": self.frames_applied,
            "apply_errors": self.apply_errors,
        }
