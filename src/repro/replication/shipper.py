"""The primary-side replication shipper (DESIGN section 16).

Installed on the primary's RTS as ``rts.replicator``; the RTS calls
:meth:`ReplicationShipper.on_pump_end` at every pump boundary, exactly
where the recovery supervisor cuts its checkpoints.  When the cadence
is due **and** every node-to-node channel is quiescent (the same
crash-consistency gate as :meth:`repro.recovery.supervisor.
RecoverySupervisor.take_checkpoint`), the shipper cuts a frame:

* frame 0 is the **full** epoch -- every node's encoded state;
* later frames are **deltas** -- only the nodes whose freshly encoded
  state bytes differ from what the previous frame shipped (the
  node-granular incremental framing the DBSP paper motivates: most
  frames carry the handful of hot operators, not the whole engine).

Frames go to a ``deliver(frame_bytes)`` callable -- in-process that is
the standby's applier, on disk a log file, over a pipe a standby
process.  Delivery failures never unwind the pump: the shipper's job
ends at handing the frame over.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict

from repro.core.channels import all_quiescent
from repro.recovery.wire import encode_snapshot
from repro.replication.log import encode_frame


class ReplicationShipper:
    """Cuts replication frames from a live RTS at quiescent boundaries."""

    def __init__(self, rts, cadence: float,
                 deliver: Callable[[bytes], None]) -> None:
        if cadence < 0:
            raise ValueError(f"replication cadence must be >= 0, "
                             f"got {cadence}")
        self.rts = rts
        #: virtual-time seconds between delta frames; 0.0 means a frame
        #: at every pump boundary
        self.cadence = cadence
        self.deliver = deliver
        #: node name -> encoded state bytes shipped by the last frame
        self._shipped: Dict[str, bytes] = {}
        self.seq = 0
        self.frames_full = 0
        self.frames_delta = 0
        self.bytes_total = 0
        self.nodes_shipped = 0
        #: pump boundaries skipped because a channel held in-flight items
        self.skipped_unquiescent = 0
        self.last_frame_time = -math.inf
        self._next_cut = None

    # -- RTS hook ------------------------------------------------------------
    def on_pump_end(self, stream_time: float) -> None:
        """Maybe cut and deliver a frame at this pump boundary."""
        if math.isinf(stream_time):
            return
        if self._next_cut is None:
            # The first pump with a real stream clock opens the epoch.
            self._next_cut = stream_time
        if stream_time < self._next_cut:
            return
        internal = (channel
                    for node in self.rts._nodes.values()
                    for _producer, channel in node.input_links)
        if not all_quiescent(internal):
            # An item in flight is state the frame would miss; the next
            # boundary will be quiescent (the pump drains to a fixpoint
            # unless a node was suspended mid-drain).
            self.skipped_unquiescent += 1
            return
        self.deliver(self._cut(stream_time))
        self._next_cut = stream_time + self.cadence

    # -- frame construction --------------------------------------------------
    def _cut(self, stream_time: float) -> bytes:
        rts = self.rts
        changed: Dict[str, bytes] = {}
        for name, node in rts.iter_nodes():
            blob = encode_snapshot(node.snapshot_state())
            if self._shipped.get(name) != blob:
                changed[name] = blob
                self._shipped[name] = blob
        kind = "full" if self.seq == 0 else "delta"
        frame = encode_frame(
            kind=kind,
            seq=self.seq,
            time=stream_time,
            # How many packets the primary has been handed so far: the
            # dispatch counter plus the ones injected faults dropped
            # pre-dispatch (both consumed an input-stream position).
            cursor=rts.packets_fed + rts.fault_dropped,
            counters=rts.counters_state(),
            nodes=changed,
        )
        self.seq += 1
        if kind == "full":
            self.frames_full += 1
        else:
            self.frames_delta += 1
        self.bytes_total += len(frame)
        self.nodes_shipped += len(changed)
        self.last_frame_time = stream_time
        return frame

    def report(self) -> Dict[str, Any]:
        return {
            "cadence": self.cadence,
            "frames_full": self.frames_full,
            "frames_delta": self.frames_delta,
            "bytes_total": self.bytes_total,
            "nodes_shipped": self.nodes_shipped,
            "skipped_unquiescent": self.skipped_unquiescent,
            "last_frame_time": self.last_frame_time,
        }
