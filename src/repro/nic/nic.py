"""The simulated NIC: ring buffer, prefilter, snap length, on-card LFTAs.

The card is modeled as a single server with a fixed per-packet
processing cost and a bounded wire-side ring: packets arriving while
the ring is full are lost on the card ("the most that our router could
handle" bounded the paper's NIC experiment before the Tigon itself
saturated, so the card's capacity is deliberately generous).

Depending on configuration the card

* runs a BPF prefilter and truncates to the snap length, then delivers
  raw packets to the host (options 2/3 of Section 4), or
* executes LFTAs on the card (option 4): the host then receives only
  the LFTAs' output tuples, each far cheaper than a packet interrupt.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional

from repro.net.packet import CapturedPacket
from repro.nic.bpf import BpfProgram
from repro.nic.nic_rts import NicRts


@dataclass
class NicStats:
    received: int = 0
    filtered: int = 0  # rejected by the BPF prefilter
    ring_dropped: int = 0  # lost: card too slow for the wire
    delivered_packets: int = 0
    delivered_tuples: int = 0


class Nic:
    """A programmable gigabit NIC (Tigon-style)."""

    def __init__(
        self,
        service_us: float = 1.2,
        ring_slots: int = 512,
        bpf: Optional[BpfProgram] = None,
        snaplen: Optional[int] = None,
        rts: Optional[NicRts] = None,
        lfta_service_us: float = 4.5,
    ) -> None:
        self.service_us = service_us
        self.lfta_service_us = lfta_service_us
        self.ring_slots = ring_slots
        self.bpf = bpf
        self.snaplen = snaplen
        self.rts = rts
        self.stats = NicStats()
        self._completions: Deque[float] = deque()
        #: host deliveries: (timestamp_us, payload) where payload is a
        #: CapturedPacket (raw modes) or a tuple batch (on-NIC LFTA mode)
        self.deliveries: List = []
        #: sampled-lineage tracer (repro.obs.tracing), set by
        #: ``Gigascope.observe_nic``; records the card-side span
        self.tracer = None
        #: injected card fault (repro.faults.RingLossBurst arms itself
        #: here); consulted per arrival, drops count as ring losses
        self.fault = None

    def _server_accept(self, now_us: float, service_us: float) -> bool:
        """Single-server queue with ``ring_slots`` waiting positions."""
        completions = self._completions
        while completions and completions[0] <= now_us:
            completions.popleft()
        if len(completions) >= self.ring_slots:
            return False
        start = completions[-1] if completions else now_us
        completions.append(max(start, now_us) + service_us)
        return True

    def receive(self, packet: CapturedPacket, now_us: float) -> None:
        """A packet arrives from the wire at ``now_us`` (microseconds)."""
        self.stats.received += 1
        trace = None
        if self.tracer is not None:
            # The trace key is content-deterministic, so the card and the
            # host RTS agree on which packets are traced with no shared
            # state (and no packet mutation).
            trace = self.tracer.wants(packet)
            if trace is not None and not self.tracer.begin(
                    trace, packet, "nic", now_us / 1e6, node="nic"):
                trace = None
        if self.fault is not None and self.fault.drops_packet(now_us / 1e6):
            # An injected ring-loss burst: the card is blind, and the
            # loss is accounted exactly like an organic ring drop.
            self.stats.ring_dropped += 1
            if trace is not None:
                self.tracer.event(trace, "nic_drop", "nic", now_us / 1e6)
            return
        service = self.lfta_service_us if self.rts is not None else self.service_us
        if not self._server_accept(now_us, service):
            self.stats.ring_dropped += 1
            if trace is not None:
                self.tracer.event(trace, "nic_drop", "nic", now_us / 1e6)
            return
        if self.bpf is not None and not self.bpf.matches(packet.data):
            self.stats.filtered += 1
            # Terminal span event: without it, a prefilter rejection is
            # indistinguishable from a lost packet in trace reconstruction.
            if trace is not None:
                self.tracer.event(trace, "nic_filtered", "nic", now_us / 1e6)
            return
        if self.snaplen is not None:
            packet = packet.truncate(self.snaplen)
        if self.rts is not None:
            rows = self.rts.execute(packet)
            if rows:
                self.stats.delivered_tuples += len(rows)
                self.deliveries.append((now_us, rows))
            return
        self.stats.delivered_packets += 1
        self.deliveries.append((now_us, packet))

    def take_deliveries(self) -> List:
        out = self.deliveries
        self.deliveries = []
        return out

    @property
    def ring_occupancy(self) -> int:
        """Packets currently queued or in service in the card's ring."""
        return len(self._completions)

    @property
    def loss_rate(self) -> float:
        if not self.stats.received:
            return 0.0
        return self.stats.ring_dropped / self.stats.received

    def pressure_signal(self) -> dict:
        """Card-side drop accounting for the overload control plane.

        Register the card with ``OverloadController.watch_nic`` so ring
        losses (the card too slow for the wire) feed the shedding policy
        alongside host-side channel overflow.
        """
        return {
            "received": self.stats.received,
            "ring_dropped": self.stats.ring_dropped,
            "loss_rate": self.loss_rate,
        }
