"""Simulated network interface cards.

The paper's testbed used a Tigon gigabit Ethernet card -- a programmable
NIC with its own run-time system.  Gigascope exploits whatever the NIC
offers (Section 3):

* a **BPF prefilter** plus a **snap length**, pushing a simple
  selection/projection into the card (:mod:`repro.nic.bpf`);
* a full **on-NIC RTS** executing LFTAs on the card itself
  (:mod:`repro.nic.nic_rts`), so the host only sees reduced tuples.

:mod:`repro.nic.nic` models the card: wire-side ring buffer, per-packet
processing cost, filtering, truncation, and delivery to the host.
"""

from repro.nic.bpf import BpfProgram, compile_pushed_predicates
from repro.nic.nic import Nic, NicStats
from repro.nic.nic_rts import NicRts

__all__ = [
    "BpfProgram",
    "compile_pushed_predicates",
    "Nic",
    "NicStats",
    "NicRts",
]
