"""The on-NIC run-time system: LFTAs executing on the card.

"Depending on the capabilities of the NIC, Gigascope can perform
further optimizations.  If the NIC has an appropriate RTS, we execute
the LFTAs inside the NIC." (Section 3)

:class:`NicRts` hosts one or more LFTA nodes whose emitted tuples are
captured locally (the card buffers them) instead of flowing through
host channels; the NIC model ships the batches to the host.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.channels import Channel
from repro.net.packet import CapturedPacket
from repro.operators.lfta import LftaNode


class NicRts:
    """Executes LFTAs on the card and collects their output tuples."""

    def __init__(self, lftas: Optional[List[LftaNode]] = None) -> None:
        self.lftas: List[LftaNode] = []
        self._taps: List[Channel] = []
        for lfta in lftas or []:
            self.add_lfta(lfta)

    def add_lfta(self, lfta: LftaNode) -> None:
        """Install an LFTA on the card, tapping its output stream."""
        tap = lfta.subscribe(name=f"{lfta.name}@nic")
        self.lftas.append(lfta)
        self._taps.append(tap)

    def execute(self, packet: CapturedPacket) -> List[tuple]:
        """Run every on-card LFTA on one packet; return emitted tuples."""
        rows: List[tuple] = []
        for lfta, tap in zip(self.lftas, self._taps):
            lfta.accept_packet(packet)
            for item in tap.drain():
                if type(item) is tuple:
                    rows.append(item)
        return rows

    def execute_batch(self, packets: List[CapturedPacket]) -> List[tuple]:
        """Run every on-card LFTA on a block of packets (DESIGN sec 10).

        Each LFTA sees the block in arrival order, so per-LFTA output
        order matches per-packet :meth:`execute` calls exactly; the
        returned list groups rows by LFTA rather than interleaving them
        per packet (card output batches are per-query anyway).
        """
        rows: List[tuple] = []
        for lfta, tap in zip(self.lftas, self._taps):
            lfta.accept_batch(packets)
            for item in tap.drain():
                if type(item) is tuple:
                    rows.append(item)
        return rows

    def heartbeat(self, stream_time: float) -> List[tuple]:
        """Propagate a heartbeat through the on-card LFTAs."""
        rows: List[tuple] = []
        for lfta, tap in zip(self.lftas, self._taps):
            lfta.on_heartbeat(stream_time)
            for item in tap.drain():
                if type(item) is tuple:
                    rows.append(item)
        return rows

    def flush(self) -> List[tuple]:
        rows: List[tuple] = []
        for lfta, tap in zip(self.lftas, self._taps):
            lfta.flush()
            for item in tap.drain():
                if type(item) is tuple:
                    rows.append(item)
        return rows
