"""A BPF-style packet prefilter executed by the NIC.

"Other NICs allow us to specify a bpf (Berkeley packet filter)
preliminary filter, and to specify the number of bytes of qualifying
packets (the snap length) to be returned -- that is, we can push a
simple selection/projection operator into the NIC." (Section 3)

:func:`compile_pushed_predicates` turns the planner's
:class:`~repro.gsql.planner.PushedPredicate` list into a
:class:`BpfProgram` that tests raw frame bytes at fixed offsets --
exactly the subset of tests classic BPF can express cheaply.
"""

from __future__ import annotations

import operator
from typing import Callable, List, Optional, Sequence

from repro.gsql.planner import PushedPredicate
from repro.net.ethernet import ETHERTYPE_IPV4

_ETH_LEN = 14
_OPS = {
    "=": operator.eq,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

# Extractors working on raw frame bytes (Ethernet + IPv4 [+ L4]).
# Each returns None when the field is not present in this packet.

def _ipversion(data: bytes) -> Optional[int]:
    if len(data) < _ETH_LEN + 1:
        return None
    return data[_ETH_LEN] >> 4


def _protocol(data: bytes) -> Optional[int]:
    if len(data) < _ETH_LEN + 10:
        return None
    return data[_ETH_LEN + 9]


def _srcip(data: bytes) -> Optional[int]:
    if len(data) < _ETH_LEN + 16:
        return None
    return int.from_bytes(data[_ETH_LEN + 12 : _ETH_LEN + 16], "big")


def _destip(data: bytes) -> Optional[int]:
    if len(data) < _ETH_LEN + 20:
        return None
    return int.from_bytes(data[_ETH_LEN + 16 : _ETH_LEN + 20], "big")


def _l4_offset(data: bytes) -> Optional[int]:
    if len(data) < _ETH_LEN + 20:
        return None
    ihl = data[_ETH_LEN] & 0x0F
    # Non-first fragments carry no L4 header.
    flags_frag = int.from_bytes(data[_ETH_LEN + 6 : _ETH_LEN + 8], "big")
    if flags_frag & 0x1FFF:
        return None
    return _ETH_LEN + ihl * 4


def _srcport(data: bytes) -> Optional[int]:
    offset = _l4_offset(data)
    if offset is None or len(data) < offset + 2:
        return None
    return int.from_bytes(data[offset : offset + 2], "big")


def _destport(data: bytes) -> Optional[int]:
    offset = _l4_offset(data)
    if offset is None or len(data) < offset + 4:
        return None
    return int.from_bytes(data[offset + 2 : offset + 4], "big")


_EXTRACTORS = {
    "ipversion": _ipversion,
    "protocol": _protocol,
    "srcip": _srcip,
    "destip": _destip,
    "srcport": _srcport,
    "destport": _destport,
}


class BpfProgram:
    """A conjunction of fixed-offset field tests over raw frame bytes."""

    def __init__(self, tests: Sequence[Callable[[bytes], bool]],
                 description: str = "") -> None:
        self._tests = list(tests)
        self.description = description
        self.evaluated = 0
        self.matched = 0

    def __len__(self) -> int:
        return len(self._tests)

    def matches(self, data: bytes) -> bool:
        """True if every test passes; an Ethernet/IPv4 check is implicit."""
        self.evaluated += 1
        if len(data) >= _ETH_LEN:
            ethertype = int.from_bytes(data[12:14], "big")
            if ethertype != ETHERTYPE_IPV4:
                return False
        for test in self._tests:
            if not test(data):
                return False
        self.matched += 1
        return True

    def __repr__(self) -> str:
        return f"BpfProgram({self.description or len(self._tests)})"


def compile_pushed_predicates(predicates: Sequence[PushedPredicate]) -> BpfProgram:
    """Compile the planner's pushed predicates to a runnable filter."""
    tests = []
    parts = []
    for predicate in predicates:
        extractor = _EXTRACTORS.get(predicate.field_name)
        if extractor is None:
            continue  # not testable at the NIC; the LFTA rechecks anyway
        compare = _OPS[predicate.op]
        value = predicate.value

        def test(data: bytes, extract=extractor, cmp=compare, want=value) -> bool:
            field = extract(data)
            return field is not None and cmp(field, want)

        tests.append(test)
        parts.append(str(predicate))
    return BpfProgram(tests, description=" and ".join(parts))
