"""GSQL abstract syntax trees.

Expression nodes are plain dataclasses; the semantic analyzer decorates
them (in a side table, not in place) with types and bindings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr:
    """Base class for GSQL expressions."""

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def walk(self):
        """Yield this node and all descendants, preorder."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class Literal(Expr):
    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return repr(self.value)
        return str(self.value)


@dataclass(frozen=True)
class Param(Expr):
    """A query parameter reference: ``$name``."""

    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class Column(Expr):
    """A column reference, optionally qualified: ``[table.]name``."""

    name: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expr):
    """``SELECT *``: expanded to every source column by the analyzer."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # '-' or 'NOT'
    operand: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass(frozen=True)
class FuncCall(Expr):
    """A scalar (possibly user-defined) function call."""

    name: str
    args: Tuple[Expr, ...]

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


AGGREGATE_NAMES = frozenset({"COUNT", "SUM", "MIN", "MAX", "AVG"})


@dataclass(frozen=True)
class AggCall(Expr):
    """An aggregate call; ``arg`` is None for COUNT(*)."""

    name: str  # upper-cased
    arg: Optional[Expr]

    def children(self) -> Tuple[Expr, ...]:
        return (self.arg,) if self.arg is not None else ()

    @property
    def is_count_star(self) -> bool:
        return self.name == "COUNT" and self.arg is None

    def __str__(self) -> str:
        inner = "*" if self.arg is None else str(self.arg)
        return f"{self.name}({inner})"


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------

@dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.expr} AS {self.alias}" if self.alias else str(self.expr)


@dataclass
class TableRef:
    """A FROM-clause source: ``[interface.]name [alias]`` or a subquery.

    ``name`` may denote a Protocol (bound to an Interface) or a Stream
    (the output of another query).  A parenthesized subquery in the
    FROM clause ("supporting subqueries in the FROM clause requires
    only an update of the parser", Section 2.2) is carried in
    ``subquery``; the engine lifts it into a named query before
    analysis.
    """

    name: str
    interface: Optional[str] = None
    alias: Optional[str] = None
    subquery: Optional["SelectQuery"] = None

    @property
    def binding(self) -> str:
        """The name this source is referred to by in expressions."""
        return self.alias or self.name

    def __str__(self) -> str:
        if self.subquery is not None:
            text = "(...)"
        elif self.interface:
            text = f"{self.interface}.{self.name}"
        else:
            text = self.name
        return f"{text} {self.alias}" if self.alias else text


@dataclass
class GroupByItem:
    expr: Expr
    alias: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.expr} AS {self.alias}" if self.alias else str(self.expr)


@dataclass
class SelectQuery:
    """SELECT ... FROM ... [WHERE] [GROUP BY] [HAVING]."""

    select_items: List[SelectItem]
    sources: List[TableRef]
    where: Optional[Expr] = None
    group_by: List[GroupByItem] = field(default_factory=list)
    having: Optional[Expr] = None
    defines: Dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> Optional[str]:
        return self.defines.get("query_name")


@dataclass
class MergeQuery:
    """MERGE a.ts : b.ts [: c.ts ...] FROM a, b[, c ...].

    The merge operator is GSQL's order-preserving union (Section 2.2).
    """

    columns: List[Column]  # one ordered column per source, in order
    sources: List[TableRef]
    defines: Dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> Optional[str]:
        return self.defines.get("query_name")
