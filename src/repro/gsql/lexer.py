"""GSQL lexer.

Tokenizes GSQL query text and DDL.  Keywords are case-insensitive (the
paper mixes ``Select`` / ``SELECT`` / ``Group by``); identifiers keep
their case but compare case-insensitively during binding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional


class GSQLSyntaxError(SyntaxError):
    """Raised for lexical and syntactic errors in GSQL text."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


KEYWORDS = frozenset(
    {
        "DEFINE", "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
        "MERGE", "AS", "AND", "OR", "NOT", "TRUE", "FALSE", "IN",
    }
)

# Token kinds
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
OP = "OP"
KEYWORD = "KEYWORD"
PARAMREF = "PARAMREF"
EOF = "EOF"

_TWO_CHAR_OPS = frozenset({"<=", ">=", "<>", "!=", "<<", ">>", "||"})
_ONE_CHAR_OPS = frozenset("=<>+-*/%|&^(),.;:{}[]")


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    value: object
    line: int
    column: int

    def matches(self, kind: str, text: Optional[str] = None) -> bool:
        if self.kind != kind:
            return False
        if text is None:
            return True
        if kind in (KEYWORD, IDENT):
            return self.text.upper() == text.upper()
        return self.text == text

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def tokenize(text: str) -> List[Token]:
    """Tokenize GSQL ``text``; raises :class:`GSQLSyntaxError` on bad input."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(text)

    def error(message: str) -> GSQLSyntaxError:
        return GSQLSyntaxError(message, line, column)

    while i < n:
        ch = text[i]
        # Whitespace
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            column = 1
            continue
        # Comments: -- to end of line, // to end of line, /* ... */
        if text.startswith("--", i) or text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise error("unterminated /* comment")
            skipped = text[i : end + 2]
            line += skipped.count("\n")
            column = 1 if "\n" in skipped else column + len(skipped)
            i = end + 2
            continue
        start_line, start_column = line, column
        # String literals, ' or "
        if ch in "'\"":
            quote = ch
            j = i + 1
            chunks = []
            while j < n and text[j] != quote:
                if text[j] == "\\" and j + 1 < n:
                    escape = text[j + 1]
                    chunks.append(
                        {"n": "\n", "t": "\t", "r": "\r", "\\": "\\",
                         quote: quote}.get(escape, "\\" + escape)
                    )
                    j += 2
                else:
                    chunks.append(text[j])
                    j += 1
            if j >= n:
                raise error("unterminated string literal")
            literal = "".join(chunks)
            tokens.append(Token(STRING, text[i : j + 1], literal, start_line, start_column))
            column += j + 1 - i
            i = j + 1
            continue
        # Numbers: hex, float, int
        if ch.isdigit():
            j = i
            if text.startswith("0x", i) or text.startswith("0X", i):
                j = i + 2
                while j < n and text[j] in "0123456789abcdefABCDEF":
                    j += 1
                value: object = int(text[i:j], 16)
            else:
                while j < n and text[j].isdigit():
                    j += 1
                is_float = False
                if j < n and text[j] == "." and j + 1 < n and text[j + 1].isdigit():
                    is_float = True
                    j += 1
                    while j < n and text[j].isdigit():
                        j += 1
                if j < n and text[j] in "eE":
                    k = j + 1
                    if k < n and text[k] in "+-":
                        k += 1
                    if k < n and text[k].isdigit():
                        is_float = True
                        j = k
                        while j < n and text[j].isdigit():
                            j += 1
                value = float(text[i:j]) if is_float else int(text[i:j])
            tokens.append(Token(NUMBER, text[i:j], value, start_line, start_column))
            column += j - i
            i = j
            continue
        # Query parameters: $name
        if ch == "$":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j == i + 1:
                raise error("expected parameter name after $")
            tokens.append(Token(PARAMREF, text[i:j], text[i + 1 : j], start_line, start_column))
            column += j - i
            i = j
            continue
        # Identifiers / keywords
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = KEYWORD if word.upper() in KEYWORDS else IDENT
            tokens.append(Token(kind, word, word, start_line, start_column))
            column += j - i
            i = j
            continue
        # Operators
        two = text[i : i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token(OP, two, two, start_line, start_column))
            i += 2
            column += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token(OP, ch, ch, start_line, start_column))
            i += 1
            column += 1
            continue
        raise error(f"unexpected character {ch!r}")

    tokens.append(Token(EOF, "", None, line, column))
    return tokens


class TokenStream:
    """Cursor over a token list with the usual peek/accept/expect helpers."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    @classmethod
    def from_text(cls, text: str) -> "TokenStream":
        return cls(tokenize(text))

    def peek(self, ahead: int = 0) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != EOF:
            self._pos += 1
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        """Consume and return the next token if it matches, else ``None``."""
        if self.peek().matches(kind, text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        """Consume the next token, raising if it does not match."""
        token = self.peek()
        if not token.matches(kind, text):
            expected = text or kind
            raise GSQLSyntaxError(
                f"expected {expected}, found {token.text or 'end of input'!r}",
                token.line,
                token.column,
            )
        return self.next()

    @property
    def at_end(self) -> bool:
        return self.peek().kind == EOF
