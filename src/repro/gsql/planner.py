"""The GSQL query planner: the LFTA/HFTA split (paper Section 3).

Gigascope pushes each query as far down the processing stack as it can:

* **LFTA** (low-level FTA): lightweight selection, projection, and
  *partial* aggregation, linked into the run-time system (or even run
  on the NIC).  Only predicates whose functions are ``lfta_safe`` may
  run here -- "Regular expression finding is too expensive for an LFTA".
* **HFTA** (high-level FTA): everything else -- expensive predicates,
  final aggregation (the sub/superaggregate split), joins, and merges.

The planner additionally extracts NIC capture hints: a BPF-style
prefilter from simple ``field op literal`` conjuncts, and the snap
length implied by the fields the query actually touches.

"To an application LFTAs and HFTAs look identical"; the split is
invisible except that the LFTA stream carries a mangled name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gsql.ast_nodes import (
    AggCall,
    BinaryOp,
    Column,
    Expr,
    FuncCall,
    Literal,
    MergeQuery,
    Param,
    UnaryOp,
)
from repro.gsql.functions import FunctionRegistry
from repro.gsql.ordering import Ordering
from repro.gsql.semantic import (
    AnalyzedQuery,
    BoundColumn,
    JoinWindow,
    SourceInfo,
)
from repro.gsql.schema import Attribute, ProtocolSchema, StreamSchema
from repro.gsql.types import FLOAT, ULLONG

# Fields a commodity NIC's BPF engine can test (paper: "Other NICs allow
# us to specify a bpf preliminary filter").
PUSHABLE_FIELDS = frozenset(
    {"protocol", "srcport", "destport", "srcip", "destip", "ipversion"}
)

# Snap lengths: headers-only when the payload is never touched.
SNAPLEN_HEADERS = 128
SNAPLEN_FULL = 65535

PAYLOAD_FIELD = "data"


class PlanError(ValueError):
    """Raised when no valid plan exists for a query."""


@dataclass
class PushedPredicate:
    """One ``field op literal`` conjunct pushable into the NIC's BPF filter."""

    field_name: str
    op: str  # '=', '<', '<=', '>', '>='
    value: object

    def __str__(self) -> str:
        return f"{self.field_name} {self.op} {self.value}"


@dataclass
class CaptureHints:
    """What the RTS asks the NIC for on behalf of one LFTA."""

    pushed: List[PushedPredicate] = field(default_factory=list)
    snaplen: int = SNAPLEN_FULL


@dataclass
class LftaPlan:
    """A low-level FTA: runs inside the RTS (or on the NIC)."""

    name: str
    interface: str
    protocol: ProtocolSchema
    predicates: List[Expr]
    mode: str  # 'projection' | 'partial_aggregation'
    output_schema: StreamSchema
    hints: CaptureHints
    # projection mode
    project_exprs: List[Expr] = field(default_factory=list)
    # partial_aggregation mode
    group_exprs: List[Expr] = field(default_factory=list)
    aggregates: List[AggCall] = field(default_factory=list)
    window_key_index: int = -1
    window_key_band: float = 0.0
    #: protocol attr_index -> output slot, for rebinding HFTA expressions
    field_map: Dict[int, int] = field(default_factory=dict)
    #: Bernoulli sampling rate (DEFINE sample p); None = keep everything
    sample_rate: Optional[float] = None


@dataclass
class HftaPlan:
    """A high-level FTA: a separate query node reading Stream input."""

    name: str
    kind: str  # 'selection' | 'aggregation' | 'join' | 'merge'
    inputs: List[str]
    input_schemas: List[StreamSchema]
    output_schema: StreamSchema
    #: per input: attr_index-in-original-source -> input slot (None = identity)
    slot_maps: List[Optional[Dict[int, int]]]
    predicates: List[Expr] = field(default_factory=list)
    select_exprs: List[Expr] = field(default_factory=list)
    # aggregation
    group_exprs: List[Expr] = field(default_factory=list)
    aggregates: List[AggCall] = field(default_factory=list)
    post_select_exprs: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    window_key_index: int = -1
    window_key_band: float = 0.0
    #: True when inputs are LFTA partial aggregates to be combined
    final_from_partials: bool = False
    # join
    join_window: Optional[JoinWindow] = None
    #: (input_index, slot) of each side's ordered attribute
    join_slots: Optional[Tuple[Tuple[int, int], Tuple[int, int]]] = None
    #: re-sort join output on its window column (DEFINE join_output sorted)
    join_sorted_output: bool = False
    # merge: (input_index, slot) per input
    merge_slots: List[Tuple[int, int]] = field(default_factory=list)
    #: Bernoulli sampling rate for stream-input queries with no LFTA
    sample_rate: Optional[float] = None


@dataclass
class QueryPlan:
    """The complete plan: zero or more LFTAs feeding at most one HFTA."""

    name: str
    analyzed: AnalyzedQuery
    lftas: List[LftaPlan]
    hfta: Optional[HftaPlan]
    output_schema: StreamSchema

    @property
    def is_lfta_only(self) -> bool:
        """A simple query can execute entirely as an LFTA."""
        return self.hfta is None

    def describe(self) -> str:
        """A human-readable plan summary (for EXPLAIN-style output)."""
        lines = [f"plan {self.name}:"]
        for lfta in self.lftas:
            lines.append(
                f"  LFTA {lfta.name} on {lfta.interface}.{lfta.protocol.name} "
                f"[{lfta.mode}] preds={len(lfta.predicates)} "
                f"snaplen={lfta.hints.snaplen} pushed={len(lfta.hints.pushed)}"
            )
        if self.hfta is not None:
            lines.append(
                f"  HFTA {self.hfta.name} [{self.hfta.kind}] "
                f"inputs={self.hfta.inputs}"
            )
        return "\n".join(lines)


def plan_query(analyzed: AnalyzedQuery, functions: FunctionRegistry,
               name: Optional[str] = None) -> QueryPlan:
    """Plan an analyzed query; raises :class:`PlanError` when impossible."""
    planner = _Planner(analyzed, functions, name or analyzed.name or "anonymous")
    plan = planner.plan()
    # Sampling happens at the query's first operator: in the LFTA when
    # there is one (earliest possible reduction), else at the HFTA.
    if analyzed.sample_rate is not None:
        if plan.lftas:
            plan.lftas[0].sample_rate = analyzed.sample_rate
        elif plan.hfta is not None:
            plan.hfta.sample_rate = analyzed.sample_rate
    return plan


class _Planner:
    def __init__(self, analyzed: AnalyzedQuery, functions: FunctionRegistry,
                 name: str) -> None:
        self.analyzed = analyzed
        self.functions = functions
        self.name = name

    # -- helpers ------------------------------------------------------------
    def _is_lfta_safe(self, expr: Expr) -> bool:
        """Cheap enough for the low-level FTA: no expensive functions."""
        for node in expr.walk():
            if isinstance(node, FuncCall):
                if not self.functions.get(node.name).lfta_safe:
                    return False
            if isinstance(node, AggCall):
                return False
        return True

    def _columns_of(self, exprs: Sequence[Expr], source_index: int) -> List[BoundColumn]:
        """Distinct bound columns of ``source_index`` used by ``exprs``."""
        seen: Dict[int, BoundColumn] = {}
        for expr in exprs:
            for node in expr.walk():
                if isinstance(node, Column):
                    bound = self.analyzed.binding_of(node)
                    if bound is not None and bound.source_index == source_index:
                        seen.setdefault(bound.attr_index, bound)
        return [seen[index] for index in sorted(seen)]

    def _touches_payload(self, exprs: Sequence[Expr], source: SourceInfo) -> bool:
        for expr in exprs:
            for node in expr.walk():
                if isinstance(node, Column):
                    bound = self.analyzed.binding_of(node)
                    if bound is not None and bound.attribute.name.lower() == PAYLOAD_FIELD:
                        return True
        return False

    def _capture_hints(self, lfta_predicates: Sequence[Expr],
                       all_exprs: Sequence[Expr],
                       source: SourceInfo) -> CaptureHints:
        pushed = []
        for conjunct in lfta_predicates:
            candidate = _pushable(conjunct, self.analyzed)
            if candidate is not None:
                pushed.append(candidate)
        snaplen = (
            SNAPLEN_FULL if self._touches_payload(all_exprs, source)
            else SNAPLEN_HEADERS
        )
        return CaptureHints(pushed=pushed, snaplen=snaplen)

    def _mangled(self, index: int) -> str:
        return f"_fta_{self.name}_{index}"

    # -- entry point ----------------------------------------------------------
    def plan(self) -> QueryPlan:
        kind = self.analyzed.kind
        if kind == "selection":
            return self._plan_selection()
        if kind == "aggregation":
            return self._plan_aggregation()
        if kind == "join":
            return self._plan_join()
        if kind == "merge":
            return self._plan_merge()
        raise PlanError(f"unknown query kind {kind!r}")

    # -- selection ---------------------------------------------------------------
    def _plan_selection(self) -> QueryPlan:
        analyzed = self.analyzed
        source = analyzed.sources[0]
        select_exprs = [col.expr for col in analyzed.output_columns]
        if not source.is_protocol:
            hfta = HftaPlan(
                name=self.name,
                kind="selection",
                inputs=[source.ref.name],
                input_schemas=[source.schema],
                output_schema=analyzed.output_schema,
                slot_maps=[None],
                predicates=list(analyzed.where_conjuncts),
                select_exprs=select_exprs,
            )
            return QueryPlan(self.name, analyzed, [], hfta, analyzed.output_schema)

        safe = [c for c in analyzed.where_conjuncts if self._is_lfta_safe(c)]
        unsafe = [c for c in analyzed.where_conjuncts if not self._is_lfta_safe(c)]
        select_safe = all(self._is_lfta_safe(e) for e in select_exprs)

        if not unsafe and select_safe:
            # The whole query executes as a single LFTA.
            hints = self._capture_hints(safe, safe + select_exprs, source)
            lfta = LftaPlan(
                name=self.name,
                interface=source.interface,
                protocol=source.schema,
                predicates=safe,
                mode="projection",
                project_exprs=select_exprs,
                output_schema=analyzed.output_schema,
                hints=hints,
            )
            return QueryPlan(self.name, analyzed, [lfta], None, analyzed.output_schema)

        # Split: LFTA does the safe filtering and projects the raw fields
        # the HFTA needs; the HFTA finishes.
        needed = self._columns_of(unsafe + select_exprs, 0)
        lfta, slot_map = self._projection_lfta(source, safe, needed,
                                               unsafe + select_exprs, 0)
        hfta = HftaPlan(
            name=self.name,
            kind="selection",
            inputs=[lfta.name],
            input_schemas=[lfta.output_schema],
            output_schema=analyzed.output_schema,
            slot_maps=[slot_map],
            predicates=unsafe,
            select_exprs=select_exprs,
        )
        return QueryPlan(self.name, analyzed, [lfta], hfta, analyzed.output_schema)

    def _projection_lfta(self, source: SourceInfo, predicates: List[Expr],
                         needed: List[BoundColumn], all_exprs: List[Expr],
                         index: int) -> Tuple[LftaPlan, Dict[int, int]]:
        """An LFTA that filters and forwards raw protocol fields."""
        if not needed:
            # Degenerate but legal: project a constant placeholder.
            raise PlanError("internal: projection LFTA with no fields")
        slot_map = {bound.attr_index: slot for slot, bound in enumerate(needed)}
        attributes = [bound.attribute for bound in needed]
        schema = StreamSchema(self._mangled(index), attributes)
        project_exprs = [
            _raw_column(self.analyzed, source, bound) for bound in needed
        ]
        hints = self._capture_hints(predicates, all_exprs + predicates, source)
        lfta = LftaPlan(
            name=self._mangled(index),
            interface=source.interface,
            protocol=source.schema,
            predicates=predicates,
            mode="projection",
            project_exprs=project_exprs,
            output_schema=schema,
            hints=hints,
            field_map=slot_map,
        )
        return lfta, slot_map

    # -- aggregation ----------------------------------------------------------------
    def _plan_aggregation(self) -> QueryPlan:
        analyzed = self.analyzed
        source = analyzed.sources[0]
        post_select = [col.expr for col in analyzed.output_columns]

        if not source.is_protocol:
            hfta = HftaPlan(
                name=self.name,
                kind="aggregation",
                inputs=[source.ref.name],
                input_schemas=[source.schema],
                output_schema=analyzed.output_schema,
                slot_maps=[None],
                predicates=list(analyzed.where_conjuncts),
                group_exprs=list(analyzed.group_exprs),
                aggregates=list(analyzed.aggregates),
                post_select_exprs=post_select,
                having=analyzed.having,
                window_key_index=analyzed.window_key_index,
                window_key_band=analyzed.window_key_band,
            )
            return QueryPlan(self.name, analyzed, [], hfta, analyzed.output_schema)

        safe_where = [c for c in analyzed.where_conjuncts if self._is_lfta_safe(c)]
        unsafe_where = [c for c in analyzed.where_conjuncts if not self._is_lfta_safe(c)]
        groups_safe = all(self._is_lfta_safe(e) for e in analyzed.group_exprs)
        aggs_safe = all(
            agg.arg is None or self._is_lfta_safe(agg.arg)
            for agg in analyzed.aggregates
        )

        if not unsafe_where and groups_safe and aggs_safe:
            return self._plan_two_level_aggregation(source, safe_where, post_select)

        # Fall back: LFTA filters + projects raw fields, HFTA aggregates fully.
        needed_exprs = (
            unsafe_where + list(analyzed.group_exprs)
            + [agg.arg for agg in analyzed.aggregates if agg.arg is not None]
        )
        needed = self._columns_of(needed_exprs, 0)
        lfta, slot_map = self._projection_lfta(
            source, safe_where, needed, needed_exprs, 0
        )
        hfta = HftaPlan(
            name=self.name,
            kind="aggregation",
            inputs=[lfta.name],
            input_schemas=[lfta.output_schema],
            output_schema=analyzed.output_schema,
            slot_maps=[slot_map],
            predicates=unsafe_where,
            group_exprs=list(analyzed.group_exprs),
            aggregates=list(analyzed.aggregates),
            post_select_exprs=post_select,
            having=analyzed.having,
            window_key_index=analyzed.window_key_index,
            window_key_band=analyzed.window_key_band,
        )
        return QueryPlan(self.name, analyzed, [lfta], hfta, analyzed.output_schema)

    def _plan_two_level_aggregation(self, source: SourceInfo,
                                    safe_where: List[Expr],
                                    post_select: List[Expr]) -> QueryPlan:
        """The sub/superaggregate split: LFTA partials, HFTA finishes.

        The LFTA output carries the group key values followed by the
        partial-aggregate slots; evictions from the direct-mapped table
        emit partials for the *same* group more than once, and the HFTA
        re-combines them.
        """
        analyzed = self.analyzed
        key_attrs = [
            Attribute(name, gsql_type, ordering)
            for name, gsql_type, ordering in zip(
                analyzed.group_names, analyzed.group_types, analyzed.group_orderings
            )
        ]
        partial_attrs = []
        for agg, agg_type in zip(analyzed.aggregates, analyzed.aggregate_types):
            base = f"p_{agg.name.lower()}{len(partial_attrs)}"
            if agg.name == "AVG":
                partial_attrs.append(Attribute(base + "_sum", FLOAT))
                partial_attrs.append(Attribute(base + "_cnt", ULLONG))
            else:
                partial_attrs.append(Attribute(base, agg_type))
        lfta_name = self._mangled(0)
        lfta_schema = StreamSchema(lfta_name, key_attrs + partial_attrs)
        all_exprs = (
            safe_where + list(analyzed.group_exprs)
            + [agg.arg for agg in analyzed.aggregates if agg.arg is not None]
        )
        hints = self._capture_hints(safe_where, all_exprs, source)
        lfta = LftaPlan(
            name=lfta_name,
            interface=source.interface,
            protocol=source.schema,
            predicates=safe_where,
            mode="partial_aggregation",
            group_exprs=list(analyzed.group_exprs),
            aggregates=list(analyzed.aggregates),
            output_schema=lfta_schema,
            hints=hints,
            window_key_index=analyzed.window_key_index,
            window_key_band=analyzed.window_key_band,
        )
        hfta = HftaPlan(
            name=self.name,
            kind="aggregation",
            inputs=[lfta_name],
            input_schemas=[lfta_schema],
            output_schema=analyzed.output_schema,
            slot_maps=[None],
            aggregates=list(analyzed.aggregates),
            post_select_exprs=post_select,
            having=analyzed.having,
            window_key_index=analyzed.window_key_index,
            window_key_band=analyzed.window_key_band,
            final_from_partials=True,
        )
        return QueryPlan(self.name, analyzed, [lfta], hfta, analyzed.output_schema)

    # -- join -------------------------------------------------------------------------
    def _plan_join(self) -> QueryPlan:
        analyzed = self.analyzed
        window = analyzed.join_window
        if window is None:
            raise PlanError("join without a window reached the planner")
        select_exprs = [col.expr for col in analyzed.output_columns]

        # Partition conjuncts: single-source & lfta-safe go to that LFTA;
        # everything else is evaluated at the join.
        lfta_preds: List[List[Expr]] = [[], []]
        hfta_preds: List[Expr] = []
        for conjunct in analyzed.where_conjuncts:
            side = _single_source(conjunct, analyzed)
            if (side is not None and analyzed.sources[side].is_protocol
                    and self._is_lfta_safe(conjunct)):
                lfta_preds[side].append(conjunct)
            else:
                hfta_preds.append(conjunct)

        lftas: List[LftaPlan] = []
        inputs: List[str] = []
        input_schemas: List[StreamSchema] = []
        slot_maps: List[Optional[Dict[int, int]]] = []
        for side, source in enumerate(analyzed.sources):
            if source.is_protocol:
                needed_exprs = hfta_preds + select_exprs
                needed = self._columns_of(needed_exprs, side)
                # The window columns must flow through as well.
                for bound in (window.left, window.right):
                    if bound.source_index == side and not any(
                        b.attr_index == bound.attr_index for b in needed
                    ):
                        needed.append(bound)
                        needed.sort(key=lambda b: b.attr_index)
                lfta, slot_map = self._projection_lfta(
                    source, lfta_preds[side], needed, needed_exprs, side
                )
                lftas.append(lfta)
                inputs.append(lfta.name)
                input_schemas.append(lfta.output_schema)
                slot_maps.append(slot_map)
            else:
                inputs.append(source.ref.name)
                input_schemas.append(source.schema)
                slot_maps.append(None)

        def slot_of(bound: BoundColumn) -> Tuple[int, int]:
            slot_map = slot_maps[bound.source_index]
            slot = bound.attr_index if slot_map is None else slot_map[bound.attr_index]
            return (bound.source_index, slot)

        hfta = HftaPlan(
            name=self.name,
            kind="join",
            inputs=inputs,
            input_schemas=input_schemas,
            output_schema=analyzed.output_schema,
            slot_maps=slot_maps,
            predicates=hfta_preds,
            select_exprs=select_exprs,
            join_window=window,
            join_slots=(slot_of(window.left), slot_of(window.right)),
            join_sorted_output=analyzed.join_sorted_output,
        )
        return QueryPlan(self.name, analyzed, lftas, hfta, analyzed.output_schema)

    # -- merge -------------------------------------------------------------------------
    def _plan_merge(self) -> QueryPlan:
        analyzed = self.analyzed
        inputs = []
        input_schemas = []
        merge_slots = []
        for position, source in enumerate(analyzed.sources):
            if source.is_protocol:
                raise PlanError(
                    "MERGE sources must be streams; wrap the protocol in a "
                    "selection query first"
                )
            inputs.append(source.ref.name)
            input_schemas.append(source.schema)
            bound = analyzed.merge_columns[position]
            merge_slots.append((position, bound.attr_index))
        hfta = HftaPlan(
            name=self.name,
            kind="merge",
            inputs=inputs,
            input_schemas=input_schemas,
            output_schema=analyzed.output_schema,
            slot_maps=[None] * len(inputs),
            merge_slots=merge_slots,
        )
        return QueryPlan(self.name, analyzed, [], hfta, analyzed.output_schema)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _raw_column(analyzed: AnalyzedQuery, source: SourceInfo,
                bound: BoundColumn) -> Column:
    """A fresh Column node for a raw field, bound into the side tables."""
    column = Column(name=bound.attribute.name, table=source.binding)
    analyzed.bindings[id(column)] = bound
    analyzed.types[id(column)] = bound.attribute.gsql_type
    return column


def _single_source(expr: Expr, analyzed: AnalyzedQuery) -> Optional[int]:
    """The one source index ``expr`` references, or None if 0 or 2 sources."""
    sources = set()
    for node in expr.walk():
        if isinstance(node, Column):
            bound = analyzed.binding_of(node)
            if bound is not None:
                sources.add(bound.source_index)
    if len(sources) == 1:
        return sources.pop()
    return None


def _pushable(conjunct: Expr, analyzed: AnalyzedQuery) -> Optional[PushedPredicate]:
    """Recognize ``column op literal`` over a BPF-testable field."""
    if not isinstance(conjunct, BinaryOp):
        return None
    if conjunct.op not in ("=", "<", "<=", ">", ">="):
        return None
    column, literal, op = None, None, conjunct.op
    if isinstance(conjunct.left, Column) and isinstance(conjunct.right, Literal):
        column, literal = conjunct.left, conjunct.right
    elif isinstance(conjunct.right, Column) and isinstance(conjunct.left, Literal):
        column, literal = conjunct.right, conjunct.left
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}[op]
    else:
        return None
    name = column.name.lower()
    if name not in PUSHABLE_FIELDS:
        return None
    if not isinstance(literal.value, (int, float)):
        return None
    return PushedPredicate(field_name=name, op=op, value=literal.value)
