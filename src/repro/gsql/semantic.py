"""GSQL semantic analysis: binding, typing, classification, imputation.

The analyzer turns a parsed query into an :class:`AnalyzedQuery` that
the planner consumes.  It

* resolves FROM sources to Protocols (bound to Interfaces) or Streams,
* binds and type-checks every expression,
* classifies the query (selection / aggregation / join / merge),
* rewrites post-aggregation expressions over :class:`KeyRef` /
  :class:`AggRef` leaves,
* extracts the join window from the join predicate (required -- GSQL
  rejects joins it cannot window), and
* imputes the ordering properties of the output stream (Section 2.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.gsql.ast_nodes import (
    AggCall,
    BinaryOp,
    Column,
    Expr,
    FuncCall,
    GroupByItem,
    Literal,
    MergeQuery,
    Param,
    SelectQuery,
    TableRef,
    UnaryOp,
)
from repro.gsql.functions import FunctionRegistry, FunctionSpec
from repro.gsql.ordering import Ordering
from repro.gsql.schema import (
    Attribute,
    ProtocolSchema,
    SchemaRegistry,
    StreamSchema,
)
from repro.gsql.types import (
    BOOL,
    FLOAT,
    GSQLType,
    INT,
    IP,
    STRING,
    UINT,
    ULLONG,
    comparable,
    literal_type,
    unify_numeric,
)

Query = Union[SelectQuery, MergeQuery]


class SemanticError(ValueError):
    """Raised when a query is well-formed but meaningless."""


# Post-aggregation leaf nodes produced by the rewrite pass -----------------

@dataclass(frozen=True)
class KeyRef(Expr):
    """Reference to group-by key slot ``index`` in post-agg expressions."""

    index: int

    def __str__(self) -> str:
        return f"key[{self.index}]"


@dataclass(frozen=True)
class AggRef(Expr):
    """Reference to aggregate slot ``index`` in post-agg expressions."""

    index: int

    def __str__(self) -> str:
        return f"agg[{self.index}]"


@dataclass
class SourceInfo:
    """A resolved FROM source."""

    ref: TableRef
    schema: Union[ProtocolSchema, StreamSchema]
    is_protocol: bool
    interface: Optional[str]

    @property
    def binding(self) -> str:
        return self.ref.binding


@dataclass
class BoundColumn:
    source_index: int
    attr_index: int
    attribute: Attribute


@dataclass
class JoinWindow:
    """Constraint ``left.ts - right.ts in [low, high]`` from the predicate."""

    left: BoundColumn
    right: BoundColumn
    low: float
    high: float

    @property
    def width(self) -> float:
        return self.high - self.low

    @property
    def is_equality(self) -> bool:
        return self.low == 0 and self.high == 0


@dataclass
class OutputColumn:
    name: str
    expr: Expr  # post-agg form for aggregation queries
    gsql_type: GSQLType
    ordering: Ordering


@dataclass
class AnalyzedQuery:
    """Everything the planner needs to know about one query."""

    query: Query
    kind: str  # 'selection' | 'aggregation' | 'join' | 'merge'
    name: Optional[str]
    sources: List[SourceInfo]
    output_schema: StreamSchema
    output_columns: List[OutputColumn]
    params: List[str]
    #: Bernoulli sampling rate from ``DEFINE sample p`` (None = no sampling);
    #: applied at the query's first operator, under the analyst's control
    #: (the paper's research-directions requirement).
    sample_rate: Optional[float] = None
    warnings: List[str] = field(default_factory=list)
    # selection / pre-aggregation predicate (conjunct list, bound)
    where_conjuncts: List[Expr] = field(default_factory=list)
    # aggregation only
    group_exprs: List[Expr] = field(default_factory=list)
    group_names: List[str] = field(default_factory=list)
    group_orderings: List[Ordering] = field(default_factory=list)
    group_types: List[GSQLType] = field(default_factory=list)
    aggregates: List[AggCall] = field(default_factory=list)
    aggregate_types: List[GSQLType] = field(default_factory=list)
    having: Optional[Expr] = None  # post-agg form
    window_key_index: int = -1  # which group expr closes windows; -1 = none
    window_key_band: float = 0.0
    # join only
    join_window: Optional[JoinWindow] = None
    #: ``DEFINE join_output sorted``: the join re-sorts its output, so
    #: ordered columns stay monotone at the cost of more buffer space
    #: ("monotonically increasing requires more buffer space", §2.1)
    join_sorted_output: bool = False
    # merge only
    merge_columns: List[BoundColumn] = field(default_factory=list)
    # expression metadata side tables (id(expr) keyed)
    types: Dict[int, GSQLType] = field(default_factory=dict)
    bindings: Dict[int, BoundColumn] = field(default_factory=dict)

    def type_of(self, expr: Expr) -> GSQLType:
        return self.types[id(expr)]

    def binding_of(self, expr: Expr) -> Optional[BoundColumn]:
        return self.bindings.get(id(expr))


StreamResolver = Callable[[str], Optional[StreamSchema]]


def analyze(
    query: Query,
    registry: SchemaRegistry,
    functions: FunctionRegistry,
    stream_resolver: Optional[StreamResolver] = None,
    default_interface: str = "eth0",
) -> AnalyzedQuery:
    """Analyze ``query`` against the protocol registry and function library."""
    analyzer = _Analyzer(registry, functions, stream_resolver, default_interface)
    if isinstance(query, MergeQuery):
        return analyzer.analyze_merge(query)
    return analyzer.analyze_select(query)


class _Analyzer:
    def __init__(
        self,
        registry: SchemaRegistry,
        functions: FunctionRegistry,
        stream_resolver: Optional[StreamResolver],
        default_interface: str,
    ) -> None:
        self.registry = registry
        self.functions = functions
        self.stream_resolver = stream_resolver or (lambda name: None)
        self.default_interface = default_interface
        self.types: Dict[int, GSQLType] = {}
        self.bindings: Dict[int, BoundColumn] = {}
        self.params: List[str] = []
        self.warnings: List[str] = []

    # -- source resolution ------------------------------------------------
    def resolve_sources(self, refs: Sequence[TableRef]) -> List[SourceInfo]:
        sources = []
        for ref in refs:
            if ref.subquery is not None:
                raise SemanticError(
                    "FROM-clause subqueries must be lifted into named "
                    "queries first (the engine does this automatically)"
                )
            protocol = self.registry.get(ref.name)
            if protocol is not None:
                interface = ref.interface or self.default_interface
                sources.append(SourceInfo(ref, protocol, True, interface))
                continue
            if ref.interface is not None:
                raise SemanticError(
                    f"{ref.interface}.{ref.name}: {ref.name!r} is not a protocol"
                )
            stream = self.stream_resolver(ref.name)
            if stream is None:
                raise SemanticError(f"unknown source {ref.name!r}")
            sources.append(SourceInfo(ref, stream, False, None))
        bindings = [source.binding.lower() for source in sources]
        if len(set(bindings)) != len(bindings):
            raise SemanticError("duplicate source bindings in FROM; add aliases")
        return sources

    # -- column binding -----------------------------------------------------
    def bind_column(self, column: Column, sources: List[SourceInfo]) -> BoundColumn:
        matches = []
        for source_index, source in enumerate(sources):
            if column.table is not None:
                if column.table.lower() != source.binding.lower():
                    continue
                if column.name not in source.schema:
                    raise SemanticError(
                        f"no column {column.name!r} in {source.binding}"
                    )
                attr_index = source.schema.index_of(column.name)
                matches.append((source_index, attr_index))
            elif column.name in source.schema:
                matches.append((source_index, source.schema.index_of(column.name)))
        if not matches:
            raise SemanticError(f"unknown column {column}")
        if len(matches) > 1:
            raise SemanticError(f"ambiguous column {column}; qualify it")
        source_index, attr_index = matches[0]
        attribute = sources[source_index].schema.attributes[attr_index]
        bound = BoundColumn(source_index, attr_index, attribute)
        self.bindings[id(column)] = bound
        return bound

    # -- typing -------------------------------------------------------------
    def type_expr(self, expr: Expr, sources: List[SourceInfo],
                  post_agg: Optional[Tuple[List[GSQLType], List[GSQLType]]] = None
                  ) -> GSQLType:
        """Infer and record the type of ``expr``.

        ``post_agg`` supplies (group key types, aggregate types) when
        typing rewritten post-aggregation expressions.
        """
        result = self._type_expr(expr, sources, post_agg)
        self.types[id(expr)] = result
        return result

    def _type_expr(self, expr, sources, post_agg) -> GSQLType:
        if isinstance(expr, Literal):
            return literal_type(expr.value)
        if isinstance(expr, Param):
            if expr.name not in self.params:
                self.params.append(expr.name)
            return UINT  # parameters default to UINT; coerced at bind time
        if isinstance(expr, KeyRef):
            if post_agg is None:
                raise SemanticError("KeyRef outside post-aggregation context")
            return post_agg[0][expr.index]
        if isinstance(expr, AggRef):
            if post_agg is None:
                raise SemanticError("AggRef outside post-aggregation context")
            return post_agg[1][expr.index]
        if isinstance(expr, Column):
            bound = self.bindings.get(id(expr)) or self.bind_column(expr, sources)
            return bound.attribute.gsql_type
        if isinstance(expr, UnaryOp):
            inner = self.type_expr(expr.operand, sources, post_agg)
            if expr.op == "NOT":
                if inner is not BOOL:
                    raise SemanticError(f"NOT applied to {inner}")
                return BOOL
            if not inner.numeric:
                raise SemanticError(f"unary - applied to {inner}")
            return INT if inner in (UINT, INT) else inner
        if isinstance(expr, BinaryOp):
            return self._type_binary(expr, sources, post_agg)
        if isinstance(expr, FuncCall):
            return self._type_func(expr, sources, post_agg)
        if isinstance(expr, AggCall):
            raise SemanticError(
                f"aggregate {expr} not allowed here (only in SELECT/HAVING "
                "of a GROUP BY query)"
            )
        raise SemanticError(f"cannot type expression {expr!r}")

    def _type_binary(self, expr: BinaryOp, sources, post_agg) -> GSQLType:
        left = self.type_expr(expr.left, sources, post_agg)
        right = self.type_expr(expr.right, sources, post_agg)
        if expr.op in ("AND", "OR"):
            if left is not BOOL or right is not BOOL:
                raise SemanticError(f"{expr.op} over non-boolean operands in {expr}")
            return BOOL
        if expr.op in ("=", "<>", "<", "<=", ">", ">="):
            if not comparable(left, right):
                raise SemanticError(f"cannot compare {left} with {right} in {expr}")
            return BOOL
        if expr.op in ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"):
            try:
                return unify_numeric(left, right)
            except TypeError as error:
                raise SemanticError(str(error)) from None
        raise SemanticError(f"unknown operator {expr.op!r}")

    def _type_func(self, expr: FuncCall, sources, post_agg) -> GSQLType:
        spec = self.functions.get(expr.name)  # raises FunctionError if unknown
        if len(expr.args) != spec.arity:
            raise SemanticError(
                f"{expr.name} takes {spec.arity} argument(s), got {len(expr.args)}"
            )
        for position, arg in enumerate(expr.args):
            if position in spec.handle_params:
                if not isinstance(arg, (Literal, Param)):
                    raise SemanticError(
                        f"argument {position + 1} of {expr.name} is pass-by-handle "
                        "and must be a literal or query parameter"
                    )
            arg_type = self.type_expr(arg, sources, post_agg)
            want = spec.arg_types[position]
            ok = (
                arg_type is want
                or (want.numeric and arg_type.numeric)
                or (want is STRING and arg_type is STRING)
                or isinstance(arg, Param)
            )
            if not ok:
                raise SemanticError(
                    f"argument {position + 1} of {expr.name}: expected {want}, "
                    f"got {arg_type}"
                )
        return spec.return_type

    # -- ordering imputation -------------------------------------------------
    def impute_ordering(self, expr: Expr, sources: List[SourceInfo]) -> Ordering:
        """Ordering property of ``expr`` over the input stream(s)."""
        if isinstance(expr, Column):
            bound = self.bindings.get(id(expr))
            if bound is None:
                return Ordering.none()
            return bound.attribute.ordering
        if isinstance(expr, UnaryOp) and expr.op == "-":
            return self.impute_ordering(expr.operand, sources).reversed()
        if isinstance(expr, BinaryOp):
            left_const = _constant_value(expr.left)
            right_const = _constant_value(expr.right)
            if expr.op == "+":
                if right_const is not None:
                    return self.impute_ordering(expr.left, sources)
                if left_const is not None:
                    return self.impute_ordering(expr.right, sources)
            elif expr.op == "-":
                if right_const is not None:
                    return self.impute_ordering(expr.left, sources)
                if left_const is not None:
                    return self.impute_ordering(expr.right, sources).reversed()
            elif expr.op == "*":
                if right_const is not None:
                    return self.impute_ordering(expr.left, sources).scaled(right_const)
                if left_const is not None:
                    return self.impute_ordering(expr.right, sources).scaled(left_const)
            elif expr.op == "/" and right_const is not None and right_const != 0:
                inner = self.impute_ordering(expr.left, sources)
                left_type = self.types.get(id(expr.left))
                if left_type is FLOAT or isinstance(right_const, float):
                    return inner.scaled(1.0 / right_const)
                return inner.after_integer_division(int(right_const))
        if isinstance(expr, FuncCall) and expr.args:
            try:
                spec = self.functions.get(expr.name)
            except Exception:
                spec = None
            if spec is not None and spec.order_preserving and not spec.handle_params:
                inner = self.impute_ordering(expr.args[0], sources)
                if inner.is_increasing:
                    band = inner.effective_band
                    # A monotone step function (floor) can lag by one unit.
                    if band:
                        return Ordering.banded(band + 1)
                    return inner.weaken_to_nonstrict()
        return Ordering.none()

    # -- SELECT ---------------------------------------------------------------
    def analyze_select(self, query: SelectQuery) -> AnalyzedQuery:
        sources = self.resolve_sources(query.sources)
        if len(sources) > 2:
            raise SemanticError("GSQL joins are restricted to two streams")
        query.select_items = self._expand_stars(query.select_items, sources)
        has_aggs = any(
            isinstance(node, AggCall)
            for item in query.select_items
            for node in item.expr.walk()
        ) or (query.having is not None and any(
            isinstance(node, AggCall) for node in query.having.walk()
        ))
        is_aggregation = bool(query.group_by) or has_aggs
        if len(sources) == 2 and is_aggregation:
            raise SemanticError(
                "aggregation over a join is not supported in one query; "
                "compose two queries instead"
            )
        where_conjuncts = _split_conjuncts(query.where)
        for conjunct in where_conjuncts:
            ctype = self.type_expr(conjunct, sources)
            if ctype is not BOOL:
                raise SemanticError(f"WHERE term {conjunct} is {ctype}, not BOOL")

        if len(sources) == 2:
            return self._finish_join(query, sources, where_conjuncts)
        if is_aggregation:
            return self._finish_aggregation(query, sources, where_conjuncts)
        return self._finish_selection(query, sources, where_conjuncts)

    def _expand_stars(self, items, sources) -> List["SelectItem"]:
        """Replace ``SELECT *`` with one item per source attribute."""
        from repro.gsql.ast_nodes import SelectItem, Star
        expanded: List[SelectItem] = []
        qualify = len(sources) > 1
        for item in items:
            if not isinstance(item.expr, Star):
                expanded.append(item)
                continue
            for source in sources:
                table = source.binding if qualify else None
                for attribute in source.schema.attributes:
                    expanded.append(
                        SelectItem(Column(attribute.name, table=table))
                    )
        return expanded

    def _finish_selection(self, query, sources, where_conjuncts) -> AnalyzedQuery:
        output_columns = []
        for index, item in enumerate(query.select_items):
            gsql_type = self.type_expr(item.expr, sources)
            ordering = self.impute_ordering(item.expr, sources)
            name = item.alias or _default_name(item.expr, index)
            output_columns.append(OutputColumn(name, item.expr, gsql_type, ordering))
        _dedupe_names(output_columns)
        return self._build(query, "selection", sources, output_columns,
                           where_conjuncts=where_conjuncts)

    def _finish_aggregation(self, query, sources, where_conjuncts) -> AnalyzedQuery:
        group_exprs: List[Expr] = []
        group_names: List[str] = []
        group_types: List[GSQLType] = []
        group_orderings: List[Ordering] = []
        for index, item in enumerate(query.group_by):
            group_exprs.append(item.expr)
            group_types.append(self.type_expr(item.expr, sources))
            group_orderings.append(self.impute_ordering(item.expr, sources))
            group_names.append(item.alias or _default_name(item.expr, index))

        aggregates: List[AggCall] = []
        aggregate_types: List[GSQLType] = []

        def agg_index(agg: AggCall) -> int:
            for position, existing in enumerate(aggregates):
                if existing == agg:
                    return position
            if agg.arg is not None:
                arg_type = self.type_expr(agg.arg, sources)
            else:
                arg_type = UINT
            aggregates.append(agg)
            aggregate_types.append(_aggregate_type(agg, arg_type))
            return len(aggregates) - 1

        def rewrite(expr: Expr) -> Expr:
            # Group expression (structural) match first.
            for position, group_expr in enumerate(group_exprs):
                if expr == group_expr:
                    return KeyRef(position)
            if isinstance(expr, Column) and expr.table is None:
                for position, name in enumerate(group_names):
                    if name.lower() == expr.name.lower():
                        return KeyRef(position)
            if isinstance(expr, AggCall):
                return AggRef(agg_index(expr))
            if isinstance(expr, Column):
                raise SemanticError(
                    f"column {expr} must appear in GROUP BY or inside an aggregate"
                )
            if isinstance(expr, BinaryOp):
                return BinaryOp(expr.op, rewrite(expr.left), rewrite(expr.right))
            if isinstance(expr, UnaryOp):
                return UnaryOp(expr.op, rewrite(expr.operand))
            if isinstance(expr, FuncCall):
                return FuncCall(expr.name, tuple(rewrite(a) for a in expr.args))
            return expr

        post_env = (group_types, aggregate_types)
        output_columns = []
        for index, item in enumerate(query.select_items):
            rewritten = rewrite(item.expr)
            gsql_type = self.type_expr(rewritten, sources, post_env)
            if isinstance(rewritten, KeyRef):
                ordering = group_orderings[rewritten.index].weaken_to_nonstrict()
            else:
                ordering = Ordering.none()
            name = item.alias or _default_name(item.expr, index)
            output_columns.append(OutputColumn(name, rewritten, gsql_type, ordering))
        _dedupe_names(output_columns)

        having = None
        if query.having is not None:
            having = rewrite(query.having)
            having_type = self.type_expr(having, sources, post_env)
            if having_type is not BOOL:
                raise SemanticError(f"HAVING is {having_type}, not BOOL")

        window_key_index = -1
        window_key_band = 0.0
        for position, ordering in enumerate(group_orderings):
            if ordering.usable_for_windows and ordering.is_increasing:
                window_key_index = position
                window_key_band = ordering.effective_band
                break
        if window_key_index < 0:
            self.warnings.append(
                "aggregation has no increasing group-by attribute; groups "
                "can only be emitted by an explicit flush"
            )

        analyzed = self._build(query, "aggregation", sources, output_columns,
                               where_conjuncts=where_conjuncts)
        analyzed.group_exprs = group_exprs
        analyzed.group_names = group_names
        analyzed.group_types = group_types
        analyzed.group_orderings = group_orderings
        analyzed.aggregates = aggregates
        analyzed.aggregate_types = aggregate_types
        analyzed.having = having
        analyzed.window_key_index = window_key_index
        analyzed.window_key_band = window_key_band
        return analyzed

    def _finish_join(self, query, sources, where_conjuncts) -> AnalyzedQuery:
        window = self._extract_join_window(where_conjuncts, sources)
        if window is None:
            raise SemanticError(
                "join predicate must constrain an ordered attribute from "
                "each stream to define a join window"
            )
        algorithm = query.defines.get("join_output", "banded").lower()
        if algorithm not in ("banded", "sorted"):
            raise SemanticError(
                f"DEFINE join_output must be 'banded' or 'sorted', "
                f"got {algorithm!r}")
        sorted_output = algorithm == "sorted"
        output_columns = []
        sort_target_found = False
        for index, item in enumerate(query.select_items):
            gsql_type = self.type_expr(item.expr, sources)
            ordering = self.impute_ordering(item.expr, sources)
            # "B.ts might be monotonically increasing or
            # banded-increasing(2) depending on the choice of join
            # algorithm (monotonically increasing requires more buffer
            # space)" -- Section 2.1.  The banded algorithm emits pairs
            # as they form; the sorted algorithm re-orders its output on
            # the first window column in the select list.
            bound = self.bindings.get(id(item.expr))
            is_window_column = bound is not None and any(
                bound.source_index == side.source_index
                and bound.attr_index == side.attr_index
                for side in (window.left, window.right)
            )
            if ordering.usable_for_windows:
                if window.is_equality:
                    ordering = ordering.weaken_to_nonstrict()
                elif (sorted_output and is_window_column
                      and not sort_target_found):
                    sort_target_found = True
                    ordering = ordering.weaken_to_nonstrict()
                else:
                    ordering = ordering.widened(window.width)
            name = item.alias or _default_name(item.expr, index)
            output_columns.append(OutputColumn(name, item.expr, gsql_type, ordering))
        if sorted_output and not window.is_equality and not sort_target_found:
            raise SemanticError(
                "DEFINE join_output sorted requires the select list to "
                "include one of the join-window columns")
        _dedupe_names(output_columns)
        analyzed = self._build(query, "join", sources, output_columns,
                               where_conjuncts=where_conjuncts)
        analyzed.join_window = window
        analyzed.join_sorted_output = sorted_output and not window.is_equality
        return analyzed

    def _extract_join_window(self, conjuncts, sources) -> Optional[JoinWindow]:
        low = -math.inf
        high = math.inf
        left_col: Optional[BoundColumn] = None
        right_col: Optional[BoundColumn] = None
        for conjunct in conjuncts:
            normalized = _normalize_band_constraint(conjunct, self.bindings)
            if normalized is None:
                continue
            col_a, col_b, op, offset = normalized
            if not (col_a.attribute.ordering.usable_for_windows
                    and col_b.attribute.ordering.usable_for_windows):
                continue
            # Orient as (source 0) - (source 1).
            if col_a.source_index == 0 and col_b.source_index == 1:
                pass
            elif col_a.source_index == 1 and col_b.source_index == 0:
                col_a, col_b = col_b, col_a
                offset = -offset
                op = {"<=": ">=", ">=": "<=", "=": "="}[op]
            else:
                continue
            if left_col is None:
                left_col, right_col = col_a, col_b
            elif (left_col.attr_index != col_a.attr_index
                  or right_col.attr_index != col_b.attr_index):
                continue  # a second, different ordered pair; ignore
            if op == "=":
                low = max(low, offset)
                high = min(high, offset)
            elif op == "<=":
                high = min(high, offset)
            else:  # >=
                low = max(low, offset)
        if left_col is None or right_col is None:
            return None
        if math.isinf(low) or math.isinf(high) or low > high:
            return None
        return JoinWindow(left=left_col, right=right_col, low=low, high=high)

    # -- MERGE -----------------------------------------------------------------
    def analyze_merge(self, query: MergeQuery) -> AnalyzedQuery:
        sources = self.resolve_sources(query.sources)
        if len(sources) < 2:
            raise SemanticError("MERGE needs at least two sources")
        merge_columns = []
        for position, column in enumerate(query.columns):
            source = sources[position]
            table = column.table
            if table is not None and table.lower() != source.binding.lower():
                raise SemanticError(
                    f"merge column {column} does not belong to source "
                    f"{source.binding} (position {position + 1})"
                )
            if column.name not in source.schema:
                raise SemanticError(f"no column {column.name!r} in {source.binding}")
            attr_index = source.schema.index_of(column.name)
            attribute = source.schema.attributes[attr_index]
            if not attribute.ordering.usable_for_windows:
                raise SemanticError(
                    f"merge column {column} has no usable ordering property"
                )
            merge_columns.append(BoundColumn(position, attr_index, attribute))
        first = sources[0].schema
        for source in sources[1:]:
            if len(source.schema) != len(first):
                raise SemanticError("merged streams must have matching schemas")
            for attr_a, attr_b in zip(first.attributes, source.schema.attributes):
                if attr_a.gsql_type is not attr_b.gsql_type:
                    raise SemanticError(
                        f"merged column type mismatch: {attr_a} vs {attr_b}"
                    )
        merged_ordering = merge_columns[0].attribute.ordering
        for bound in merge_columns[1:]:
            merged_ordering = merged_ordering.merge_with(bound.attribute.ordering)
        output_columns = []
        merge_positions = {bound.attr_index for bound in merge_columns}
        merge_attr_index = merge_columns[0].attr_index
        for index, attribute in enumerate(first.attributes):
            ordering = merged_ordering if index == merge_attr_index else Ordering.none()
            output_columns.append(
                OutputColumn(attribute.name, Column(attribute.name),
                             attribute.gsql_type, ordering)
            )
        analyzed = self._build(query, "merge", sources, output_columns)
        analyzed.merge_columns = merge_columns
        return analyzed

    # -- shared ------------------------------------------------------------------
    def _build(self, query, kind, sources, output_columns,
               where_conjuncts=None) -> AnalyzedQuery:
        name = query.defines.get("query_name")
        sample_rate = None
        if "sample" in query.defines:
            try:
                sample_rate = float(query.defines["sample"])
            except ValueError:
                raise SemanticError(
                    f"DEFINE sample must be a probability, got "
                    f"{query.defines['sample']!r}") from None
            if not 0.0 < sample_rate <= 1.0:
                raise SemanticError("DEFINE sample must be in (0, 1]")
            if kind in ("merge", "join"):
                raise SemanticError(
                    f"sampling a {kind.upper()} is not meaningful; "
                    "sample the input queries instead")
        schema = StreamSchema(
            name or "anonymous",
            [
                Attribute(col.name, col.gsql_type, col.ordering)
                for col in output_columns
            ],
        )
        return AnalyzedQuery(
            query=query,
            kind=kind,
            name=name,
            sources=sources,
            output_schema=schema,
            output_columns=output_columns,
            params=list(self.params),
            sample_rate=sample_rate,
            warnings=list(self.warnings),
            where_conjuncts=list(where_conjuncts or []),
            types=self.types,
            bindings=self.bindings,
        )


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _split_conjuncts(expr: Optional[Expr]) -> List[Expr]:
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _constant_value(expr: Expr) -> Optional[Union[int, float]]:
    """The numeric value of a constant expression, else None."""
    if isinstance(expr, Literal) and isinstance(expr.value, (int, float)) \
            and not isinstance(expr.value, bool):
        return expr.value
    if isinstance(expr, UnaryOp) and expr.op == "-":
        inner = _constant_value(expr.operand)
        return -inner if inner is not None else None
    if isinstance(expr, BinaryOp):
        left = _constant_value(expr.left)
        right = _constant_value(expr.right)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/" and right != 0:
            return left / right
    return None


def _normalize_band_constraint(conjunct: Expr, bindings: Dict[int, BoundColumn]):
    """Normalize ``colA (cmp) colB +- c`` into ``(colA, colB, op, offset)``
    meaning ``colA - colB  op  offset`` with op in {=, <=, >=}.

    Returns None for conjuncts that are not of this shape.
    """
    if not isinstance(conjunct, BinaryOp):
        return None
    if conjunct.op not in ("=", "<=", ">=", "<", ">"):
        return None
    op = {"<": "<=", ">": ">="}.get(conjunct.op, conjunct.op)

    def decompose(expr: Expr):
        """Return (column, constant_offset) for expr = column +- c."""
        if isinstance(expr, Column):
            bound = bindings.get(id(expr))
            return (bound, 0.0) if bound is not None else None
        if isinstance(expr, BinaryOp) and expr.op in ("+", "-"):
            const = _constant_value(expr.right)
            if const is not None:
                inner = decompose(expr.left)
                if inner is not None:
                    column, offset = inner
                    return column, offset + (const if expr.op == "+" else -const)
            if expr.op == "+":
                const = _constant_value(expr.left)
                if const is not None:
                    inner = decompose(expr.right)
                    if inner is not None:
                        column, offset = inner
                        return column, offset + const
        return None

    left = decompose(conjunct.left)
    right = decompose(conjunct.right)
    if left is None or right is None:
        return None
    col_a, offset_a = left
    col_b, offset_b = right
    if col_a.source_index == col_b.source_index:
        return None
    # colA + oa  op  colB + ob  ==>  colA - colB  op  ob - oa
    return col_a, col_b, op, offset_b - offset_a


def _aggregate_type(agg: AggCall, arg_type: GSQLType) -> GSQLType:
    if agg.name == "COUNT":
        return ULLONG
    if agg.name == "AVG":
        return FLOAT
    if agg.name == "SUM":
        if not arg_type.numeric:
            raise SemanticError(f"SUM over non-numeric type {arg_type}")
        return FLOAT if arg_type is FLOAT else ULLONG
    if agg.name in ("MIN", "MAX"):
        return arg_type
    raise SemanticError(f"unknown aggregate {agg.name}")


def _default_name(expr: Expr, index: int) -> str:
    if isinstance(expr, Column):
        return expr.name
    if isinstance(expr, AggCall):
        return agg_default_name(expr)
    if isinstance(expr, FuncCall):
        return expr.name.lower()
    return f"col{index}"


def agg_default_name(agg: AggCall) -> str:
    if agg.is_count_star:
        return "cnt"
    return f"{agg.name.lower()}_{_default_name(agg.arg, 0)}"


def _dedupe_names(columns: List[OutputColumn]) -> None:
    seen: Dict[str, int] = {}
    for column in columns:
        key = column.name.lower()
        if key in seen:
            seen[key] += 1
            column.name = f"{column.name}_{seen[key]}"
        else:
            seen[key] = 0
