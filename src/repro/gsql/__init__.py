"""GSQL: the Gigascope query language.

The pipeline mirrors the paper's GSQL processor:

* :mod:`repro.gsql.lexer` / :mod:`repro.gsql.parser` -- GSQL text to AST
* :mod:`repro.gsql.types` -- the GSQL type system
* :mod:`repro.gsql.schema` -- Protocols, Streams, Interfaces, and the DDL
* :mod:`repro.gsql.ordering` -- ordered-attribute properties (Section 2.1)
  and their imputation through operators
* :mod:`repro.gsql.functions` -- the user-function registry (partial
  functions, pass-by-handle parameters)
* :mod:`repro.gsql.semantic` -- binding, typing, query classification
* :mod:`repro.gsql.planner` -- the LFTA/HFTA split and NIC push-down
* :mod:`repro.gsql.codegen` -- generates Python per-tuple code (the
  paper generates C/C++)
"""

from repro.gsql.types import GSQLType, UINT, INT, ULLONG, FLOAT, STRING, BOOL, IP
from repro.gsql.ordering import Ordering, OrderingKind
from repro.gsql.schema import (
    Attribute,
    ProtocolSchema,
    StreamSchema,
    SchemaRegistry,
    builtin_registry,
    parse_ddl,
)
from repro.gsql.parser import parse_query, GSQLSyntaxError
from repro.gsql.semantic import analyze, SemanticError, AnalyzedQuery
from repro.gsql.planner import plan_query, QueryPlan
from repro.gsql.functions import FunctionRegistry, builtin_functions

__all__ = [
    "GSQLType",
    "UINT",
    "INT",
    "ULLONG",
    "FLOAT",
    "STRING",
    "BOOL",
    "IP",
    "Ordering",
    "OrderingKind",
    "Attribute",
    "ProtocolSchema",
    "StreamSchema",
    "SchemaRegistry",
    "builtin_registry",
    "parse_ddl",
    "parse_query",
    "GSQLSyntaxError",
    "analyze",
    "SemanticError",
    "AnalyzedQuery",
    "plan_query",
    "QueryPlan",
    "FunctionRegistry",
    "builtin_functions",
]
