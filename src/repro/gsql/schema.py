"""Protocols, Streams, Interfaces: the GSQL data definition layer.

A **Protocol** is a data stream produced by interpreting raw packets
with a library of interpretation functions; its schema maps field names
to those functions.  A **Stream** is the output of a GSQL query; its
tuples are packed positionally.  A Protocol must be bound to an
**Interface** (a symbolic packet source) to fully specify a query
source (paper Section 2.2).

The DDL (:func:`parse_ddl`) lets users declare new protocols and their
ordering properties, mirroring "The Gigascope data definition language
allows the user to specify special properties of the attributes in a
source stream, including the ordering properties."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.gsql.lexer import (
    EOF,
    GSQLSyntaxError,
    IDENT,
    KEYWORD,
    NUMBER,
    OP,
    TokenStream,
)
from repro.gsql.ordering import Ordering, OrderingKind
from repro.gsql.types import (
    BOOL,
    FLOAT,
    GSQLType,
    INT,
    IP,
    IP6,
    STRING,
    UINT,
    parse_type,
)
from repro.net.bgp import BGPUpdate
from repro.net.columnar import decoder_for as columnar_decoder_for
from repro.net.ethernet import ETHERTYPE_IPV4, EthernetHeader
from repro.net.icmp import ICMPHeader
from repro.net.ip import IPv4Header, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from repro.net.ipv6 import (
    ETHERTYPE_IPV6,
    EXT_FRAGMENT,
    IPv6Header,
    skip_extension_headers,
)
from repro.net.netflow import unpack_netflow_v5
from repro.net.packet import CapturedPacket
from repro.net.tcp import TCPHeader
from repro.net.udp import UDPHeader


@dataclass(frozen=True)
class Attribute:
    """One attribute of a Protocol or Stream schema."""

    name: str
    gsql_type: GSQLType
    ordering: Ordering = field(default_factory=Ordering.none)

    def __str__(self) -> str:
        text = f"{self.name} {self.gsql_type}"
        if self.ordering.kind != OrderingKind.NONE:
            text += f" ({self.ordering})"
        return text


class SchemaError(ValueError):
    """Raised for schema definition and lookup errors."""


class _BaseSchema:
    """Shared name/attribute handling for Protocol and Stream schemas."""

    def __init__(self, name: str, attributes: Sequence[Attribute]) -> None:
        self.name = name
        self.attributes: Tuple[Attribute, ...] = tuple(attributes)
        self._index: Dict[str, int] = {}
        for position, attribute in enumerate(self.attributes):
            key = attribute.name.lower()
            if key in self._index:
                raise SchemaError(f"duplicate attribute {attribute.name!r} in {name}")
            self._index[key] = position

    def __len__(self) -> int:
        return len(self.attributes)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._index

    def index_of(self, name: str) -> int:
        """Position of attribute ``name`` (case-insensitive)."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise SchemaError(f"no attribute {name!r} in {self.name}") from None

    def attribute(self, name: str) -> Attribute:
        return self.attributes[self.index_of(name)]

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(attribute.name for attribute in self.attributes)

    def ordered_attributes(self) -> List[Attribute]:
        """Attributes whose ordering can bound operator state."""
        return [a for a in self.attributes if a.ordering.usable_for_windows]


class PacketView:
    """Lazily parsed view of a captured packet.

    Interpretation functions read fields from this view; headers are
    parsed at most once per packet and missing layers yield ``None``
    (which discards the tuple, like a partial function with no result).
    """

    __slots__ = ("packet", "_eth", "_ip", "_ip6", "_l4", "_payload_offset",
                 "_parsed")

    def __init__(self, packet: CapturedPacket) -> None:
        self.packet = packet
        self._eth: Optional[EthernetHeader] = None
        self._ip: Optional[IPv4Header] = None
        self._ip6: Optional[IPv6Header] = None
        self._l4 = None
        self._payload_offset = -1
        self._parsed = False

    def _parse(self) -> None:
        if self._parsed:
            return
        self._parsed = True
        data = self.packet.data
        try:
            self._eth = EthernetHeader.parse(data, 0)
        except ValueError:
            return
        offset = self._eth.header_len
        if self._eth.ethertype == ETHERTYPE_IPV4:
            try:
                self._ip = IPv4Header.parse(data, offset)
            except ValueError:
                return
            offset += self._ip.header_len
            # Non-first fragments carry no L4 header.
            if self._ip.fragment_offset > 0:
                self._payload_offset = offset
                return
            protocol = self._ip.protocol
        elif self._eth.ethertype == ETHERTYPE_IPV6:
            try:
                self._ip6 = IPv6Header.parse(data, offset)
                offset += self._ip6.header_len
                protocol, offset = skip_extension_headers(
                    data, offset, self._ip6.next_header)
            except ValueError:
                self._ip6 = None
                return
            if protocol == EXT_FRAGMENT:
                self._payload_offset = offset
                return
        else:
            return
        try:
            if protocol == PROTO_TCP:
                self._l4 = TCPHeader.parse(data, offset)
                offset += self._l4.header_len
            elif protocol == PROTO_UDP:
                self._l4 = UDPHeader.parse(data, offset)
                offset += self._l4.header_len
            elif protocol == PROTO_ICMP:
                self._l4 = ICMPHeader.parse(data, offset)
                offset += self._l4.header_len
        except ValueError:
            self._l4 = None
        self._payload_offset = offset

    @property
    def eth(self) -> Optional[EthernetHeader]:
        self._parse()
        return self._eth

    @property
    def ip(self) -> Optional[IPv4Header]:
        self._parse()
        return self._ip

    @property
    def tcp(self) -> Optional[TCPHeader]:
        self._parse()
        return self._l4 if isinstance(self._l4, TCPHeader) else None

    @property
    def udp(self) -> Optional[UDPHeader]:
        self._parse()
        return self._l4 if isinstance(self._l4, UDPHeader) else None

    @property
    def icmp(self) -> Optional[ICMPHeader]:
        self._parse()
        return self._l4 if isinstance(self._l4, ICMPHeader) else None

    @property
    def ip6(self) -> Optional[IPv6Header]:
        self._parse()
        return self._ip6

    @property
    def payload(self) -> Optional[bytes]:
        """The L4 payload (or IP payload for fragments), possibly truncated."""
        self._parse()
        if self._payload_offset < 0:
            return None
        return self.packet.data[self._payload_offset :]


FieldFunction = Callable[[PacketView], object]


class ProtocolSchema(_BaseSchema):
    """A Protocol: schema plus per-field interpretation functions.

    ``interpret(packet)`` returns a list of tuples (usually 0 or 1;
    Netflow datagrams expand to up to 30).  A field function returning
    ``None`` discards the candidate tuple -- the packet does not belong
    to this protocol.
    """

    def __init__(
        self,
        name: str,
        attributes: Sequence[Attribute],
        field_functions: Dict[str, FieldFunction],
        expander: Optional[Callable[[CapturedPacket], List[tuple]]] = None,
        clock_fields: Optional[Dict[str, Callable[[float], object]]] = None,
        guard: Optional[Callable[[PacketView], bool]] = None,
        columnar_decoder: Optional[Callable] = None,
    ) -> None:
        super().__init__(name, attributes)
        self._expander = expander
        #: whole-block columnar decoder (DESIGN section 14): decodes a
        #: packet block into a ColumnarBlock whose rows are exactly the
        #: packets the guard admits.  Only the built-in ip/tcp/udp
        #: protocols ship one; None keeps the row-based path.
        self.columnar_decoder = columnar_decoder
        #: membership test: does this packet belong to the protocol at
        #: all?  Checked before any field is interpreted, so a query
        #: that only touches capture metadata (e.g. ``time``) still
        #: sees only its own protocol's packets.
        self._guard = guard
        self._functions: List[FieldFunction] = []
        if expander is None:
            for attribute in self.attributes:
                function = field_functions.get(attribute.name.lower())
                if function is None:
                    raise SchemaError(
                        f"no interpretation function for {name}.{attribute.name}"
                    )
                self._functions.append(function)
        # Which attributes track the capture clock, and how a stream-time
        # heartbeat translates into a lower bound for each.
        if clock_fields is None:
            clock_fields = {}
            if "time" in self:
                clock_fields["time"] = int
            if "timestamp" in self:
                clock_fields["timestamp"] = lambda ts: ts
        self.clock_fields: Dict[int, Callable[[float], object]] = {
            self.index_of(field_name): bound_fn
            for field_name, bound_fn in clock_fields.items()
        }

    def clock_bounds(self, stream_time: float) -> Dict[int, object]:
        """Lower bounds on clock attributes implied by ``stream_time``."""
        return {
            index: bound_fn(stream_time)
            for index, bound_fn in self.clock_fields.items()
        }

    def sparse_interpreter(
        self, needed_indices: Sequence[int]
    ) -> Callable[[CapturedPacket], List[tuple]]:
        """An interpreter evaluating only the listed attribute positions.

        The returned rows still have one slot per schema attribute
        (unneeded slots are ``None``), so compiled code can index them
        by attribute position.  Expander-based protocols always produce
        full rows.
        """
        if self._expander is not None:
            expander = self._expander

            def expand(packet: CapturedPacket, view=None) -> List[tuple]:
                return expander(packet)

            return expand
        width = len(self.attributes)
        pairs = [(index, self._functions[index]) for index in sorted(set(needed_indices))]
        guard = self._guard

        def interpret(packet: CapturedPacket,
                      view: Optional[PacketView] = None) -> List[tuple]:
            # A caller-supplied view lets several LFTAs on one interface
            # share a single header parse per packet.
            if view is None:
                view = PacketView(packet)
            if guard is not None and not guard(view):
                return []
            row = [None] * width
            for index, function in pairs:
                value = function(view)
                if value is None:
                    return []
                row[index] = value
            return [tuple(row)]

        return interpret

    def field_function(self, name: str) -> FieldFunction:
        if self._expander is not None:
            raise SchemaError(f"{self.name} is interpreted by an expander")
        return self._functions[self.index_of(name)]

    def interpret(self, packet: CapturedPacket) -> List[tuple]:
        """Interpret a packet into zero or more tuples."""
        if self._expander is not None:
            return self._expander(packet)
        view = PacketView(packet)
        if self._guard is not None and not self._guard(view):
            return []
        values = []
        for function in self._functions:
            value = function(view)
            if value is None:
                return []
            values.append(value)
        return [tuple(values)]


class StreamSchema(_BaseSchema):
    """The schema of a query output stream (positional tuples)."""


class SchemaRegistry:
    """Maps protocol names to schemas; the RTS consults this at bind time."""

    def __init__(self) -> None:
        self._protocols: Dict[str, ProtocolSchema] = {}

    def add(self, schema: ProtocolSchema) -> None:
        key = schema.name.lower()
        if key in self._protocols:
            raise SchemaError(f"protocol {schema.name!r} already registered")
        self._protocols[key] = schema

    def get(self, name: str) -> Optional[ProtocolSchema]:
        return self._protocols.get(name.lower())

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._protocols

    def names(self) -> List[str]:
        return sorted(self._protocols)


# ---------------------------------------------------------------------------
# Built-in protocols
# ---------------------------------------------------------------------------

def _time_field(view: PacketView) -> object:
    # The paper's `time` is a 1-second granularity timer.
    return int(view.packet.timestamp)


def _timestamp_field(view: PacketView) -> object:
    return view.packet.timestamp


def _ip_fields() -> Dict[str, FieldFunction]:
    return {
        "time": _time_field,
        "timestamp": _timestamp_field,
        "ipversion": lambda v: v.ip.version if v.ip else None,
        "protocol": lambda v: v.ip.protocol if v.ip else None,
        "srcip": lambda v: v.ip.src if v.ip else None,
        "destip": lambda v: v.ip.dst if v.ip else None,
        "len": lambda v: v.packet.orig_len,
        "caplen": lambda v: v.packet.caplen,
        "ttl": lambda v: v.ip.ttl if v.ip else None,
        "id": lambda v: v.ip.identification if v.ip else None,
        "frag_offset": lambda v: v.ip.fragment_offset if v.ip else None,
        "more_fragments": lambda v: (1 if v.ip.more_fragments else 0) if v.ip else None,
    }


_IP_ATTRIBUTES = [
    Attribute("time", UINT, Ordering.increasing()),
    Attribute("timestamp", FLOAT, Ordering.increasing()),
    Attribute("ipversion", UINT),
    Attribute("protocol", UINT),
    Attribute("srcIP", IP),
    Attribute("destIP", IP),
    Attribute("len", UINT),
    Attribute("caplen", UINT),
    Attribute("ttl", UINT),
    Attribute("id", UINT),
    Attribute("frag_offset", UINT),
    Attribute("more_fragments", UINT),
]


def _make_ip_protocol() -> ProtocolSchema:
    return ProtocolSchema("ip", _IP_ATTRIBUTES, _ip_fields(),
                          guard=lambda v: v.ip is not None,
                          columnar_decoder=columnar_decoder_for("ip"))


def _make_tcp_protocol() -> ProtocolSchema:
    fields = _ip_fields()
    fields.update(
        {
            "srcport": lambda v: v.tcp.src_port if v.tcp else None,
            "destport": lambda v: v.tcp.dst_port if v.tcp else None,
            "tcpflags": lambda v: v.tcp.flags if v.tcp else None,
            "seqno": lambda v: v.tcp.seq if v.tcp else None,
            "ackno": lambda v: v.tcp.ack if v.tcp else None,
            "tcpwindow": lambda v: v.tcp.window if v.tcp else None,
            "data": lambda v: v.payload if v.tcp else None,
        }
    )
    attributes = _IP_ATTRIBUTES + [
        Attribute("srcPort", UINT),
        Attribute("destPort", UINT),
        Attribute("tcpflags", UINT),
        Attribute("seqno", UINT),
        Attribute("ackno", UINT),
        Attribute("tcpwindow", UINT),
        Attribute("data", STRING),
    ]
    return ProtocolSchema("tcp", attributes, fields,
                          guard=lambda v: v.ip is not None and v.tcp is not None,
                          columnar_decoder=columnar_decoder_for("tcp"))


def _make_udp_protocol() -> ProtocolSchema:
    fields = _ip_fields()
    fields.update(
        {
            "srcport": lambda v: v.udp.src_port if v.udp else None,
            "destport": lambda v: v.udp.dst_port if v.udp else None,
            "udplen": lambda v: v.udp.length if v.udp else None,
            "data": lambda v: v.payload if v.udp else None,
        }
    )
    attributes = _IP_ATTRIBUTES + [
        Attribute("srcPort", UINT),
        Attribute("destPort", UINT),
        Attribute("udplen", UINT),
        Attribute("data", STRING),
    ]
    return ProtocolSchema("udp", attributes, fields,
                          guard=lambda v: v.ip is not None and v.udp is not None,
                          columnar_decoder=columnar_decoder_for("udp"))


_ETHERNET_ATTRIBUTES = [
    Attribute("time", UINT, Ordering.increasing()),
    Attribute("timestamp", FLOAT, Ordering.increasing()),
    Attribute("ethertype", UINT),
    Attribute("len", UINT),
    Attribute("eth_src", STRING),
    Attribute("eth_dst", STRING),
]


def _make_ethernet_protocol() -> ProtocolSchema:
    """Link-layer accounting: every frame, regardless of network layer."""
    fields: Dict[str, FieldFunction] = {
        "time": _time_field,
        "timestamp": _timestamp_field,
        "ethertype": lambda v: v.eth.ethertype if v.eth else None,
        "len": lambda v: v.packet.orig_len,
        "eth_src": lambda v: v.eth.src.encode() if v.eth else None,
        "eth_dst": lambda v: v.eth.dst.encode() if v.eth else None,
    }
    return ProtocolSchema("ethernet", _ETHERNET_ATTRIBUTES, fields,
                          guard=lambda v: v.eth is not None)


def _ip6_fields() -> Dict[str, FieldFunction]:
    return {
        "time": _time_field,
        "timestamp": _timestamp_field,
        "ipversion": lambda v: v.ip6.version if v.ip6 else None,
        "srcip6": lambda v: v.ip6.src if v.ip6 else None,
        "destip6": lambda v: v.ip6.dst if v.ip6 else None,
        "len": lambda v: v.packet.orig_len,
        "hoplimit": lambda v: v.ip6.hop_limit if v.ip6 else None,
        "flow_label": lambda v: v.ip6.flow_label if v.ip6 else None,
    }


_IP6_ATTRIBUTES = [
    Attribute("time", UINT, Ordering.increasing()),
    Attribute("timestamp", FLOAT, Ordering.increasing()),
    Attribute("ipversion", UINT),
    Attribute("srcIP6", IP6),
    Attribute("destIP6", IP6),
    Attribute("len", UINT),
    Attribute("hoplimit", UINT),
    Attribute("flow_label", UINT),
]


def _make_tcp6_protocol() -> ProtocolSchema:
    fields = _ip6_fields()
    fields.update(
        {
            "srcport": lambda v: v.tcp.src_port if (v.ip6 and v.tcp) else None,
            "destport": lambda v: v.tcp.dst_port if (v.ip6 and v.tcp) else None,
            "tcpflags": lambda v: v.tcp.flags if (v.ip6 and v.tcp) else None,
            "data": lambda v: v.payload if (v.ip6 and v.tcp) else None,
        }
    )
    attributes = _IP6_ATTRIBUTES + [
        Attribute("srcPort", UINT),
        Attribute("destPort", UINT),
        Attribute("tcpflags", UINT),
        Attribute("data", STRING),
    ]
    return ProtocolSchema("tcp6", attributes, fields,
                          guard=lambda v: v.ip6 is not None and v.tcp is not None)


def _make_udp6_protocol() -> ProtocolSchema:
    fields = _ip6_fields()
    fields.update(
        {
            "srcport": lambda v: v.udp.src_port if (v.ip6 and v.udp) else None,
            "destport": lambda v: v.udp.dst_port if (v.ip6 and v.udp) else None,
            "data": lambda v: v.payload if (v.ip6 and v.udp) else None,
        }
    )
    attributes = _IP6_ATTRIBUTES + [
        Attribute("srcPort", UINT),
        Attribute("destPort", UINT),
        Attribute("data", STRING),
    ]
    return ProtocolSchema("udp6", attributes, fields,
                          guard=lambda v: v.ip6 is not None and v.udp is not None)


def _make_icmp_protocol() -> ProtocolSchema:
    fields = _ip_fields()
    fields.update(
        {
            "icmp_type": lambda v: v.icmp.icmp_type if v.icmp else None,
            "icmp_code": lambda v: v.icmp.code if v.icmp else None,
            "icmp_id": lambda v: v.icmp.identifier if v.icmp else None,
            "icmp_seq": lambda v: v.icmp.sequence if v.icmp else None,
        }
    )
    attributes = _IP_ATTRIBUTES + [
        Attribute("icmp_type", UINT),
        Attribute("icmp_code", UINT),
        Attribute("icmp_id", UINT),
        Attribute("icmp_seq", UINT),
    ]
    return ProtocolSchema("icmp", attributes, fields,
                          guard=lambda v: v.icmp is not None)


_NETFLOW_ATTRIBUTES = [
    Attribute("time_end", FLOAT, Ordering.increasing()),
    # Routers dump their cache every 30 s, so start times trail the
    # high-water mark by at most that much (paper Section 2.1).
    Attribute("time_start", FLOAT, Ordering.banded(30.0)),
    Attribute("srcIP", IP),
    Attribute("destIP", IP),
    Attribute("srcPort", UINT),
    Attribute("destPort", UINT),
    Attribute("protocol", UINT),
    Attribute("packets", UINT),
    Attribute("octets", UINT),
    Attribute("tcpflags", UINT),
]


def _netflow_expander(packet: CapturedPacket) -> List[tuple]:
    """Expand a UDP datagram carrying Netflow v5 into flow tuples."""
    view = PacketView(packet)
    payload = view.payload if view.udp else None
    if not payload:
        return []
    try:
        records = unpack_netflow_v5(payload)
    except ValueError:
        return []
    return [
        (
            record.end_time,
            record.start_time,
            record.src_ip,
            record.dst_ip,
            record.src_port,
            record.dst_port,
            record.protocol,
            record.packets,
            record.octets,
            record.tcp_flags,
        )
        for record in records
    ]


def _make_netflow_protocol() -> ProtocolSchema:
    return ProtocolSchema(
        "netflow",
        _NETFLOW_ATTRIBUTES,
        {},
        expander=_netflow_expander,
        clock_fields={
            "time_end": lambda ts: ts,
            # Start times trail the export high-water mark by the 30 s
            # cache-dump interval (banded-increasing(30)).
            "time_start": lambda ts: ts - 30.0,
        },
    )


_DNS_ATTRIBUTES = [
    Attribute("time", UINT, Ordering.increasing()),
    Attribute("timestamp", FLOAT, Ordering.increasing()),
    Attribute("srcIP", IP),
    Attribute("destIP", IP),
    Attribute("txid", UINT),
    Attribute("is_response", UINT),
    Attribute("rcode", UINT),
    Attribute("qtype", UINT),
    Attribute("answers", UINT),
    Attribute("qname", STRING),
]


def _dns_expander(packet: CapturedPacket) -> List[tuple]:
    """Interpret UDP port-53 datagrams as DNS messages."""
    from repro.net.dns import DNSMessage
    view = PacketView(packet)
    udp = view.udp
    if udp is None or view.ip is None:
        return []
    if udp.src_port != 53 and udp.dst_port != 53:
        return []
    payload = view.payload
    if not payload:
        return []
    try:
        message = DNSMessage.parse(payload)
    except ValueError:
        return []
    return [
        (
            int(packet.timestamp),
            packet.timestamp,
            view.ip.src,
            view.ip.dst,
            message.txid,
            1 if message.is_response else 0,
            message.rcode,
            message.qtype,
            message.answers,
            message.qname.encode(),
        )
    ]


def _make_dns_protocol() -> ProtocolSchema:
    return ProtocolSchema("dns", _DNS_ATTRIBUTES, {}, expander=_dns_expander)


_BGP_ATTRIBUTES = [
    Attribute("time", UINT, Ordering.increasing()),
    Attribute("peerIP", IP),
    Attribute("origin_as", UINT),
    Attribute("announced", UINT),
    Attribute("withdrawn", UINT),
    Attribute("path_len", UINT),
]


def _bgp_expander(packet: CapturedPacket) -> List[tuple]:
    """Interpret a packet whose UDP/TCP payload is one BGP UPDATE."""
    view = PacketView(packet)
    payload = view.payload
    if not payload or view.ip is None:
        return []
    try:
        update = BGPUpdate.parse(payload)
    except (ValueError, IndexError):
        return []
    return [
        (
            int(packet.timestamp),
            view.ip.src,
            update.origin_as,
            len(update.announced),
            len(update.withdrawn),
            len(update.as_path),
        )
    ]


def _make_bgp_protocol() -> ProtocolSchema:
    return ProtocolSchema("bgp", _BGP_ATTRIBUTES, {}, expander=_bgp_expander)


def builtin_registry() -> SchemaRegistry:
    """The stock protocol library: ip, tcp, udp, icmp, netflow, bgp."""
    registry = SchemaRegistry()
    registry.add(_make_ethernet_protocol())
    registry.add(_make_ip_protocol())
    registry.add(_make_tcp_protocol())
    registry.add(_make_udp_protocol())
    registry.add(_make_icmp_protocol())
    registry.add(_make_tcp6_protocol())
    registry.add(_make_udp6_protocol())
    registry.add(_make_dns_protocol())
    registry.add(_make_netflow_protocol())
    registry.add(_make_bgp_protocol())
    return registry


# ---------------------------------------------------------------------------
# DDL
# ---------------------------------------------------------------------------

def _parse_ordering(stream: TokenStream) -> Ordering:
    """Parse an ordering spec inside parentheses after a type name."""
    token = stream.expect(IDENT)
    word = token.text.lower()
    if word == "strictly":
        direction = stream.expect(IDENT).text.lower()
        if direction == "increasing":
            return Ordering.increasing(strict=True)
        if direction == "decreasing":
            return Ordering.decreasing(strict=True)
        raise GSQLSyntaxError(f"bad ordering {word} {direction}", token.line, token.column)
    if word == "increasing":
        return Ordering.increasing()
    if word == "decreasing":
        return Ordering.decreasing()
    if word == "nonrepeating":
        return Ordering.nonrepeating()
    if word == "banded_increasing":
        stream.expect(OP, "(")
        number = stream.expect(NUMBER)
        stream.expect(OP, ")")
        return Ordering.banded(float(number.value))
    if word == "increasing_in_group":
        stream.expect(OP, "(")
        fields = [stream.expect(IDENT).text]
        while stream.accept(OP, ","):
            fields.append(stream.expect(IDENT).text)
        stream.expect(OP, ")")
        return Ordering.in_group(*fields)
    raise GSQLSyntaxError(f"unknown ordering property {word!r}", token.line, token.column)


def parse_ddl(
    text: str,
    field_library: Optional[Dict[str, FieldFunction]] = None,
) -> List[ProtocolSchema]:
    """Parse DDL text declaring protocols.

    Syntax::

        PROTOCOL name (
            field TYPE [(ordering)] ,
            ...
        )

    Interpretation functions are resolved from ``field_library`` by
    lower-cased field name; it defaults to the built-in IP/TCP/UDP field
    library so users can compose custom protocol views of stock fields.
    """
    if field_library is None:
        field_library = _ip_fields()
        tcp = _make_tcp_protocol()
        for name in ("srcport", "destport", "tcpflags", "seqno", "ackno",
                     "tcpwindow", "data"):
            field_library[name] = tcp.field_function(name)
    stream = TokenStream.from_text(text)
    schemas: List[ProtocolSchema] = []
    while not stream.at_end:
        stream.expect(IDENT, "PROTOCOL")
        name = stream.expect(IDENT).text
        stream.expect(OP, "(")
        attributes: List[Attribute] = []
        functions: Dict[str, FieldFunction] = {}
        while True:
            field_name = stream.expect(IDENT).text
            type_token = stream.next()
            gsql_type = parse_type(type_token.text)
            ordering = Ordering.none()
            if stream.accept(OP, "("):
                ordering = _parse_ordering(stream)
                stream.expect(OP, ")")
            attributes.append(Attribute(field_name, gsql_type, ordering))
            key = field_name.lower()
            if key not in field_library:
                raise SchemaError(
                    f"field {field_name!r} not in the interpretation library"
                )
            functions[key] = field_library[key]
            if not stream.accept(OP, ","):
                break
        stream.expect(OP, ")")
        stream.accept(OP, ";")
        schemas.append(ProtocolSchema(name, attributes, functions))
    return schemas
