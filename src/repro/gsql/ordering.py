"""Ordered attributes and their ordering properties (paper Section 2.1).

GSQL turns blocking operators into stream operators by reasoning about
*ordering properties* of attributes: timestamps and sequence numbers
that increase (strictly, monotonically, within a band, or within a
group) with the ordinal position of a tuple in its stream.  The query
processor *imputes* the ordering properties of operator outputs from
those of the inputs; this module holds both the property representation
and the imputation rules for expressions.

The property set implemented (the paper's illustrative list, made
precise):

* ``STRICT_INCREASING`` / ``INCREASING`` (and the decreasing duals)
* ``NONREPEATING`` -- monotone nonrepeating (e.g. after a hash)
* ``BANDED_INCREASING(delta)`` -- always within ``delta`` of the
  high-water mark (Netflow start times are banded-increasing(30 s))
* ``INCREASING_IN_GROUP(fields)`` -- increasing among tuples with the
  same values of ``fields``
* ``NONE`` -- no usable ordering
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class OrderingKind(enum.Enum):
    NONE = "none"
    INCREASING = "increasing"
    STRICT_INCREASING = "strict_increasing"
    DECREASING = "decreasing"
    STRICT_DECREASING = "strict_decreasing"
    NONREPEATING = "nonrepeating"
    BANDED_INCREASING = "banded_increasing"
    INCREASING_IN_GROUP = "increasing_in_group"


@dataclass(frozen=True)
class Ordering:
    """An ordering property, possibly parameterized.

    ``band`` is the band width for ``BANDED_INCREASING``; ``group`` is
    the tuple of grouping field names for ``INCREASING_IN_GROUP``.
    """

    kind: OrderingKind = OrderingKind.NONE
    band: float = 0.0
    group: Tuple[str, ...] = ()

    # -- constructors ---------------------------------------------------
    @classmethod
    def none(cls) -> "Ordering":
        return cls(OrderingKind.NONE)

    @classmethod
    def increasing(cls, strict: bool = False) -> "Ordering":
        return cls(OrderingKind.STRICT_INCREASING if strict else OrderingKind.INCREASING)

    @classmethod
    def decreasing(cls, strict: bool = False) -> "Ordering":
        return cls(OrderingKind.STRICT_DECREASING if strict else OrderingKind.DECREASING)

    @classmethod
    def nonrepeating(cls) -> "Ordering":
        return cls(OrderingKind.NONREPEATING)

    @classmethod
    def banded(cls, band: float) -> "Ordering":
        if band < 0:
            raise ValueError("band width must be nonnegative")
        return cls(OrderingKind.BANDED_INCREASING, band=band)

    @classmethod
    def in_group(cls, *fields: str) -> "Ordering":
        return cls(OrderingKind.INCREASING_IN_GROUP, group=tuple(fields))

    # -- predicates -----------------------------------------------------
    @property
    def is_increasing(self) -> bool:
        """True for any globally increasing property (banded included)."""
        return self.kind in (
            OrderingKind.INCREASING,
            OrderingKind.STRICT_INCREASING,
            OrderingKind.BANDED_INCREASING,
        )

    @property
    def is_monotone(self) -> bool:
        """True for exactly increasing/decreasing (not banded or grouped)."""
        return self.kind in (
            OrderingKind.INCREASING,
            OrderingKind.STRICT_INCREASING,
            OrderingKind.DECREASING,
            OrderingKind.STRICT_DECREASING,
        )

    @property
    def usable_for_windows(self) -> bool:
        """Can this property bound operator state (flush groups, purge joins)?

        Grouped and nonrepeating orderings cannot: they give no global
        low-water mark.
        """
        return self.is_increasing or self.kind in (
            OrderingKind.DECREASING,
            OrderingKind.STRICT_DECREASING,
        )

    @property
    def effective_band(self) -> float:
        """Slack to keep when flushing: 0 for monotone, delta for banded."""
        return self.band if self.kind == OrderingKind.BANDED_INCREASING else 0.0

    def __str__(self) -> str:
        if self.kind == OrderingKind.BANDED_INCREASING:
            return f"banded_increasing({self.band})"
        if self.kind == OrderingKind.INCREASING_IN_GROUP:
            return f"increasing_in_group({', '.join(self.group)})"
        return self.kind.value

    # -- imputation helpers ---------------------------------------------
    def weaken_to_nonstrict(self) -> "Ordering":
        """Strict becomes plain monotone (e.g. after integer division)."""
        if self.kind == OrderingKind.STRICT_INCREASING:
            return Ordering(OrderingKind.INCREASING)
        if self.kind == OrderingKind.STRICT_DECREASING:
            return Ordering(OrderingKind.DECREASING)
        return self

    def reversed(self) -> "Ordering":
        """Ordering of ``-x`` or ``c - x``: increasing and decreasing swap."""
        swap = {
            OrderingKind.INCREASING: OrderingKind.DECREASING,
            OrderingKind.STRICT_INCREASING: OrderingKind.STRICT_DECREASING,
            OrderingKind.DECREASING: OrderingKind.INCREASING,
            OrderingKind.STRICT_DECREASING: OrderingKind.STRICT_INCREASING,
        }
        if self.kind in swap:
            return Ordering(swap[self.kind])
        if self.kind == OrderingKind.NONREPEATING:
            return self
        # Reversal of banded/grouped properties is not tracked.
        return Ordering.none()

    def scaled(self, factor: float) -> "Ordering":
        """Ordering of ``x * factor`` or ``x / (1/factor)`` for constant factor."""
        if factor > 0:
            if self.kind == OrderingKind.BANDED_INCREASING:
                return Ordering.banded(self.band * factor)
            return self
        if factor < 0:
            return self.reversed()
        return Ordering.none()

    def after_integer_division(self, divisor: int) -> "Ordering":
        """Ordering of ``x / c`` under integer division (e.g. ``time/60``).

        Strictness is lost (many inputs map to one bucket); bands shrink
        but a partial bucket can still regress, so keep ceil(band/c).
        """
        if divisor <= 0:
            return Ordering.none()
        if self.kind == OrderingKind.BANDED_INCREASING:
            band = -(-self.band // divisor)  # ceiling division
            return Ordering.banded(band) if band > 0 else Ordering.increasing()
        if self.kind == OrderingKind.NONREPEATING:
            return Ordering.none()
        return self.weaken_to_nonstrict()

    def merge_with(self, other: "Ordering") -> "Ordering":
        """Ordering of an order-preserving merge of two streams.

        The merge operator emits in nondecreasing order of the merge
        attribute, so strictness is lost and bands take the maximum.
        """
        if not (self.usable_for_windows and other.usable_for_windows):
            return Ordering.none()
        increasing = self.is_increasing and other.is_increasing
        decreasing = not self.is_increasing and not other.is_increasing
        if increasing:
            band = max(self.effective_band, other.effective_band)
            return Ordering.banded(band) if band else Ordering.increasing()
        if decreasing:
            return Ordering.decreasing()
        return Ordering.none()

    def widened(self, extra_band: float) -> "Ordering":
        """Ordering after a band join adds up to ``extra_band`` of slack."""
        if extra_band <= 0:
            return self
        if self.is_increasing:
            return Ordering.banded(self.effective_band + extra_band)
        return Ordering.none()
