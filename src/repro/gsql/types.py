"""The GSQL type system.

GSQL types are a small fixed set mirroring what the paper's code
generator emits as C types.  ``IP`` is represented as a 32-bit unsigned
integer on the wire but kept distinct for display and for functions
like ``getlpmid`` that only make sense on addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class GSQLType:
    """A GSQL scalar type."""

    name: str
    python_type: type
    numeric: bool

    def __str__(self) -> str:
        return self.name


UINT = GSQLType("UINT", int, True)
INT = GSQLType("INT", int, True)
ULLONG = GSQLType("ULLONG", int, True)
FLOAT = GSQLType("FLOAT", float, True)
STRING = GSQLType("STRING", bytes, False)
BOOL = GSQLType("BOOL", bool, False)
IP = GSQLType("IP", int, True)
IP6 = GSQLType("IP6", int, True)  # 128-bit address

_BY_NAME = {
    t.name: t for t in (UINT, INT, ULLONG, FLOAT, STRING, BOOL, IP, IP6)
}
# DDL aliases accepted by parse_type.
_BY_NAME["UINT32"] = UINT
_BY_NAME["UINT64"] = ULLONG
_BY_NAME["INTEGER"] = INT
_BY_NAME["DOUBLE"] = FLOAT
_BY_NAME["BOOLEAN"] = BOOL
_BY_NAME["IPV4"] = IP


class TypeError_(TypeError):
    """A GSQL typing error (named to avoid shadowing the builtin)."""


def parse_type(name: str) -> GSQLType:
    """Look up a type by its DDL name (case-insensitive)."""
    gsql_type = _BY_NAME.get(name.upper())
    if gsql_type is None:
        raise TypeError_(f"unknown GSQL type {name!r}")
    return gsql_type


_NUMERIC_RANK = {INT: 0, UINT: 1, ULLONG: 2, IP: 1, IP6: 2, FLOAT: 3}


def unify_numeric(left: GSQLType, right: GSQLType) -> GSQLType:
    """Result type of an arithmetic operation over two numeric types."""
    if not (left.numeric and right.numeric):
        raise TypeError_(f"cannot apply arithmetic to {left} and {right}")
    if FLOAT in (left, right):
        return FLOAT
    winner = left if _NUMERIC_RANK[left] >= _NUMERIC_RANK[right] else right
    # Arithmetic on addresses yields plain integers.
    if winner is IP:
        return UINT
    if winner is IP6:
        return ULLONG
    return winner


def comparable(left: GSQLType, right: GSQLType) -> bool:
    """True if values of the two types may be compared with =, <, etc."""
    if left.numeric and right.numeric:
        return True
    return left is right


def literal_type(value: object) -> GSQLType:
    """Infer the GSQL type of a Python literal value."""
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return UINT if value >= 0 else INT
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, (bytes, str)):
        return STRING
    raise TypeError_(f"no GSQL type for literal {value!r}")
