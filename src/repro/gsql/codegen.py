"""GSQL code generation.

The paper's GSQL processor "is actually a code generator": queries are
translated to C/C++, compiled, and linked into the run-time system.
This module is the Python analog: expressions are translated to Python
source, compiled with :func:`compile`, and the resulting closures are
linked into the operator objects.  The generated source is retained on
the compiler (``generated_sources``) for inspection and tests.

A tree-walking *interpreted* mode is kept alongside so the benefit of
code generation is measurable (benchmark E6).

Conventions in generated code:

* ``t`` -- the input tuple (or ``l``/``r`` for join inputs)
* ``k`` / ``a`` -- group key tuple / aggregate values tuple (post-agg)
* ``P`` -- the query-parameter dict (mutable; on-the-fly changes)
* ``_fN`` / ``_hN`` -- resolved function implementations and handles

Partial functions signal "no result" by raising :class:`DiscardTuple`;
the wrappers installed here convert a ``None`` return into that raise,
and every generated entry point catches it and discards the tuple --
"the processing is the same as if there is no result from a join".
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.gsql.ast_nodes import (
    AggCall,
    BinaryOp,
    Column,
    Expr,
    FuncCall,
    Literal,
    Param,
    UnaryOp,
)
from repro.gsql.functions import FunctionRegistry, FunctionSpec
from repro.gsql.semantic import AggRef, AnalyzedQuery, KeyRef
from repro.gsql.types import BOOL, FLOAT, GSQLType


class DiscardTuple(Exception):
    """Raised by a partial function with no result: drop the tuple."""


class CodegenError(ValueError):
    """Raised when an expression cannot be compiled."""


# Tuple-argument names by arity: 1 input, 2 join inputs, post-agg pair.
_ARG_NAMES = {1: ("t",), 2: ("l", "r"), "post": ("k", "a")}

_BINOPS = {
    "=": "==",
    "<>": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
    "+": "+",
    "-": "-",
    "*": "*",
    "%": "%",
    "&": "&",
    "|": "|",
    "^": "^",
    "<<": "<<",
    ">>": ">>",
    "AND": "and",
    "OR": "or",
}

SlotMap = Optional[Dict[int, int]]


class ExprCompiler:
    """Compiles bound GSQL expressions into Python callables.

    One compiler instance serves one query instantiation: it owns the
    parameter dict, the resolved pass-by-handle objects, and the
    environment the generated code runs in.
    """

    def __init__(
        self,
        analyzed: AnalyzedQuery,
        functions: FunctionRegistry,
        params: Optional[Dict[str, Any]] = None,
        mode: str = "compiled",
    ) -> None:
        if mode not in ("compiled", "interpreted"):
            raise CodegenError(f"unknown codegen mode {mode!r}")
        self.analyzed = analyzed
        self.functions = functions
        self.params: Dict[str, Any] = dict(params or {})
        self.mode = mode
        self.generated_sources: List[str] = []
        self._env: Dict[str, Any] = {"P": self.params, "DiscardTuple": DiscardTuple}
        self._counter = 0
        #: when set, column references compile to columnar array reads
        #: instead of tuple indexing: (template, used-slot set)
        self._column_ref: Optional[Tuple[str, set]] = None
        self._handle_cache: Dict[Tuple[str, Any], str] = {}
        missing = [name for name in analyzed.params if name not in self.params]
        if missing:
            raise CodegenError(
                f"query requires parameter(s) {', '.join(missing)}; "
                "pass them at instantiation"
            )

    # -- public API ---------------------------------------------------------
    def tuple_fn(
        self,
        exprs: Sequence[Expr],
        slot_maps: Sequence[SlotMap] = (None,),
        arity: int = 1,
    ) -> Callable[..., Optional[tuple]]:
        """A callable building the output tuple; ``None`` means discard."""
        if self.mode == "interpreted":
            return self._interp_tuple_fn(exprs, slot_maps, arity)
        parts = [self._compile(e, slot_maps, arity) for e in exprs]
        body = "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"
        return self._finalize(body, arity, on_discard="None")

    def predicate_fn(
        self,
        conjuncts: Sequence[Expr],
        slot_maps: Sequence[SlotMap] = (None,),
        arity: int = 1,
    ) -> Callable[..., bool]:
        """A callable evaluating the conjunction; DiscardTuple => False."""
        if not conjuncts:
            if arity == 1:
                return lambda t: True
            return lambda l, r: True
        if self.mode == "interpreted":
            return self._interp_predicate_fn(conjuncts, slot_maps, arity)
        body = " and ".join(
            "(" + self._compile(c, slot_maps, arity) + ")" for c in conjuncts
        )
        return self._finalize(body, arity, on_discard="False")

    def scalar_fn(
        self,
        expr: Expr,
        slot_maps: Sequence[SlotMap] = (None,),
        arity: int = 1,
    ) -> Callable[..., Any]:
        """A callable computing one value; DiscardTuple propagates."""
        if self.mode == "interpreted":
            evaluator = self._interp_evaluator(slot_maps, arity)
            return lambda *tuples: evaluator(expr, tuples)
        body = self._compile(expr, slot_maps, arity)
        return self._finalize(body, arity, on_discard=None)

    # -- batched (fused) entry points ---------------------------------------
    #
    # The scalar API compiles the predicate and the tuple builder into
    # *separate* callables and the operator chains them per tuple; the
    # fused variants emit ONE generated function that runs the whole
    # interpret->predicate->project (or ->key) pipeline over a list of
    # rows, hoisting the call chain out of the inner loop (MonetDB/X100
    # style vectorized execution; DESIGN section 10).  Per-row semantics
    # are byte-identical to the scalar chain: conjuncts short-circuit in
    # the same order and DiscardTuple counts the row as discarded.

    def batch_select_fn(
        self,
        conjuncts: Sequence[Expr],
        exprs: Sequence[Expr],
        slot_maps: Sequence[SlotMap] = (None,),
    ) -> Callable[[Sequence[tuple], Callable[[tuple], None]], int]:
        """One fused ``f(rows, append) -> discarded`` for select plans.

        For each row that passes the predicate, the built output tuple
        is handed to ``append``; the return value counts rows dropped
        by the predicate or by a partial function with no result.
        """
        if self.mode == "interpreted":
            predicate = self.predicate_fn(conjuncts, slot_maps)
            project = self.tuple_fn(exprs, slot_maps)
            return _chained_batch_select(predicate, project)
        pred_src = " and ".join(
            "(" + self._compile(c, slot_maps, 1) + ")" for c in conjuncts
        )
        parts = [self._compile(e, slot_maps, 1) for e in exprs]
        build = "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"
        return self._finalize_batch(pred_src, f"append({build})")

    def batch_key_fn(
        self,
        conjuncts: Sequence[Expr],
        group_exprs: Sequence[Expr],
        slot_maps: Sequence[SlotMap] = (None,),
    ) -> Callable[[Sequence[tuple], Callable[[tuple], None]], int]:
        """One fused ``f(rows, append) -> discarded`` for aggregation.

        ``append`` receives ``(key, row)`` pairs for rows that pass the
        predicate and build a key; the aggregate update stays in the
        operator (it mutates shared group state).
        """
        if self.mode == "interpreted":
            predicate = self.predicate_fn(conjuncts, slot_maps)
            key_fn = self.tuple_fn(group_exprs, slot_maps)
            return _chained_batch_key(predicate, key_fn)
        pred_src = " and ".join(
            "(" + self._compile(c, slot_maps, 1) + ")" for c in conjuncts
        )
        parts = [self._compile(e, slot_maps, 1) for e in group_exprs]
        key = "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"
        return self._finalize_batch(pred_src, f"append(({key}, t))")

    # -- columnar (block) entry points --------------------------------------
    #
    # The batched entry points above still loop tuple-at-a-time over a
    # list of row tuples.  The columnar variants run over a decoded
    # ColumnarBlock (repro.net.columnar) instead: predicate conjuncts
    # are evaluated column-wise over a shrinking survivor index list
    # (short-circuiting across conjuncts exactly like the scalar `and`
    # chain), and only the final survivors' output columns are gathered
    # -- the lazy-decode rule of DESIGN section 14.  Per-row semantics
    # stay byte-identical: a row evaluates conjunct k iff it passed
    # conjuncts 1..k-1, DiscardTuple counts the row discarded once, and
    # expressions are pure so regrouping the evaluation order per
    # conjunct is unobservable.

    def columnar_select_fn(
        self,
        conjuncts: Sequence[Expr],
        exprs: Sequence[Expr],
        slot_maps: Sequence[SlotMap] = (None,),
    ) -> Optional[Callable]:
        """One fused ``f(block, rows, append) -> discarded`` for select
        plans over a ColumnarBlock; ``rows`` is the initial survivor
        index list.  Returns None in interpreted mode (no columnar
        fallback chain -- the caller keeps the row-based path)."""
        if self.mode == "interpreted":
            return None
        filter_src = self._columnar_filter_src(conjuncts, slot_maps)
        build_slots: set = set()
        parts = [
            self._compile_columnar(e, slot_maps, "_o{slot}[j]", build_slots)
            for e in exprs
        ]
        build = "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"
        gathers = "".join(
            f"    _o{slot} = B.gather({slot}, rows)\n"
            for slot in sorted(build_slots)
        )
        name = f"_g{self._counter}"
        self._counter += 1
        source = (
            f"def {name}(B, rows, append):\n"
            f"    d = 0\n"
            f"{filter_src}"
            f"{gathers}"
            f"    for j in range(len(rows)):\n"
            f"        try:\n"
            f"            append({build})\n"
            f"        except DiscardTuple:\n"
            f"            d += 1\n"
            f"    return d\n"
        )
        return self._finalize_source(name, source)

    def columnar_key_fn(
        self,
        conjuncts: Sequence[Expr],
        group_exprs: Sequence[Expr],
        row_slots: Sequence[int],
        width: int,
        slot_maps: Sequence[SlotMap] = (None,),
    ) -> Optional[Callable]:
        """One fused ``f(block, rows) -> (discarded, keys, rows_out)``
        for partial aggregation over a ColumnarBlock.

        ``keys`` are the group-key tuples of the surviving rows and
        ``rows_out`` their schema-width row tuples with only
        ``row_slots`` (the slots the aggregate argument expressions
        read) materialized -- the aggregate update keeps evaluating its
        arguments per row, preserving partial-function semantics.
        """
        if self.mode == "interpreted":
            return None
        filter_src = self._columnar_filter_src(conjuncts, slot_maps)
        gather_slots: set = set(row_slots)
        key_parts = [
            self._compile_columnar(e, slot_maps, "_o{slot}[j]", gather_slots)
            for e in group_exprs
        ]
        key = "(" + ", ".join(key_parts) + ("," if len(key_parts) == 1 else "") + ")"
        row_set = set(row_slots)
        row_parts = [
            (f"_o{slot}[j]" if slot in row_set else "None")
            for slot in range(width)
        ]
        row = "(" + ", ".join(row_parts) + ("," if width == 1 else "") + ")"
        gathers = "".join(
            f"    _o{slot} = B.gather({slot}, rows)\n"
            for slot in sorted(gather_slots)
        )
        name = f"_g{self._counter}"
        self._counter += 1
        source = (
            f"def {name}(B, rows):\n"
            f"    d = 0\n"
            f"{filter_src}"
            f"{gathers}"
            f"    keys = []\n"
            f"    out = []\n"
            f"    _ka = keys.append\n"
            f"    _oa = out.append\n"
            f"    for j in range(len(rows)):\n"
            f"        try:\n"
            f"            _k = {key}\n"
            f"        except DiscardTuple:\n"
            f"            d += 1\n"
            f"            continue\n"
            f"        _ka(_k)\n"
            f"        _oa({row})\n"
            f"    return d, keys, out\n"
        )
        return self._finalize_source(name, source)

    def _columnar_filter_src(
        self, conjuncts: Sequence[Expr], slot_maps: Sequence[SlotMap]
    ) -> str:
        """Per-conjunct survivor-list filter loops (shared preamble)."""
        lines: List[str] = []
        declared: set = set()
        for conjunct in conjuncts:
            used: set = set()
            src = self._compile_columnar(conjunct, slot_maps, "_c{slot}[i]", used)
            for slot in sorted(used - declared):
                lines.append(f"    _c{slot} = B.col({slot})\n")
            declared |= used
            lines.append(
                "    keep = []\n"
                "    _ka = keep.append\n"
                "    for i in rows:\n"
                "        try:\n"
                f"            if ({src}):\n"
                "                _ka(i)\n"
                "            else:\n"
                "                d += 1\n"
                "        except DiscardTuple:\n"
                "            d += 1\n"
                "    rows = keep\n"
            )
        return "".join(lines)

    def _compile_columnar(
        self, expr: Expr, slot_maps: Sequence[SlotMap],
        template: str, used: set,
    ) -> str:
        """Compile ``expr`` with column references rewritten to columnar
        array reads (``template`` formats the slot); collects slots."""
        self._column_ref = (template, used)
        try:
            return self._compile(expr, slot_maps, 1)
        finally:
            self._column_ref = None

    def _finalize_source(self, name: str, source: str) -> Callable:
        self.generated_sources.append(source)
        code = compile(source, f"<gsql:{self.analyzed.name or 'anonymous'}>", "exec")
        exec(code, self._env)
        return self._env[name]

    def _finalize_batch(self, pred_src: str, action: str) -> Callable:
        name = f"_g{self._counter}"
        self._counter += 1
        guard = (f"            if not ({pred_src}):\n"
                 f"                d += 1\n"
                 f"                continue\n") if pred_src else ""
        source = (
            f"def {name}(rows, append):\n"
            f"    d = 0\n"
            f"    for t in rows:\n"
            f"        try:\n"
            f"{guard}"
            f"            {action}\n"
            f"        except DiscardTuple:\n"
            f"            d += 1\n"
            f"    return d\n"
        )
        self.generated_sources.append(source)
        code = compile(source, f"<gsql:{self.analyzed.name or 'anonymous'}>", "exec")
        exec(code, self._env)
        return self._env[name]

    def post_tuple_fn(self, exprs: Sequence[Expr]) -> Callable[[tuple, tuple], Optional[tuple]]:
        """Post-aggregation tuple builder over (key, agg-values)."""
        if self.mode == "interpreted":
            evaluator = self._interp_evaluator((None,), "post")
            def build(k: tuple, a: tuple) -> Optional[tuple]:
                try:
                    return tuple(evaluator(e, (k, a)) for e in exprs)
                except DiscardTuple:
                    return None
            return build
        parts = [self._compile(e, (None,), "post") for e in exprs]
        body = "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"
        return self._finalize(body, "post", on_discard="None")

    def post_predicate_fn(self, expr: Optional[Expr]) -> Callable[[tuple, tuple], bool]:
        """Post-aggregation (HAVING) predicate over (key, agg-values)."""
        if expr is None:
            return lambda k, a: True
        if self.mode == "interpreted":
            evaluator = self._interp_evaluator((None,), "post")
            def check(k: tuple, a: tuple) -> bool:
                try:
                    return bool(evaluator(expr, (k, a)))
                except DiscardTuple:
                    return False
            return check
        body = self._compile(expr, (None,), "post")
        return self._finalize(body, "post", on_discard="False")

    # -- compiled mode --------------------------------------------------------
    def _finalize(self, body: str, arity, on_discard: Optional[str]) -> Callable:
        args = ", ".join(_ARG_NAMES[arity])
        name = f"_g{self._counter}"
        self._counter += 1
        if on_discard is None:
            source = f"def {name}({args}):\n    return {body}\n"
        else:
            source = (
                f"def {name}({args}):\n"
                f"    try:\n"
                f"        return {body}\n"
                f"    except DiscardTuple:\n"
                f"        return {on_discard}\n"
            )
        self.generated_sources.append(source)
        code = compile(source, f"<gsql:{self.analyzed.name or 'anonymous'}>", "exec")
        exec(code, self._env)
        return self._env[name]

    def _compile(self, expr: Expr, slot_maps: Sequence[SlotMap], arity) -> str:
        if isinstance(expr, Literal):
            # GSQL STRING values are bytes at run time (payloads, names);
            # encode str literals so 'GET' compares equal to b'GET'.
            if isinstance(expr.value, str):
                return repr(expr.value.encode("latin-1"))
            return repr(expr.value)
        if isinstance(expr, Param):
            return f"P[{expr.name!r}]"
        if isinstance(expr, KeyRef):
            return f"k[{expr.index}]"
        if isinstance(expr, AggRef):
            return f"a[{expr.index}]"
        if isinstance(expr, Column):
            return self._compile_column(expr, slot_maps, arity)
        if isinstance(expr, UnaryOp):
            inner = self._compile(expr.operand, slot_maps, arity)
            return f"(not {inner})" if expr.op == "NOT" else f"(-{inner})"
        if isinstance(expr, BinaryOp):
            left = self._compile(expr.left, slot_maps, arity)
            right = self._compile(expr.right, slot_maps, arity)
            if expr.op == "/":
                op = "/" if self._is_float_division(expr) else "//"
            else:
                op = _BINOPS.get(expr.op)
                if op is None:
                    raise CodegenError(f"cannot compile operator {expr.op!r}")
            return f"({left} {op} {right})"
        if isinstance(expr, FuncCall):
            return self._compile_call(expr, slot_maps, arity)
        if isinstance(expr, AggCall):
            raise CodegenError(f"bare aggregate {expr} reached codegen")
        raise CodegenError(f"cannot compile {expr!r}")

    def _compile_column(self, expr: Column, slot_maps, arity) -> str:
        bound = self.analyzed.binding_of(expr)
        if bound is None:
            raise CodegenError(f"unbound column {expr}")
        slot_map = slot_maps[bound.source_index] if bound.source_index < len(slot_maps) else None
        slot = bound.attr_index if slot_map is None else slot_map[bound.attr_index]
        if self._column_ref is not None:
            template, used = self._column_ref
            used.add(slot)
            return template.format(slot=slot)
        names = _ARG_NAMES[arity]
        var = names[bound.source_index] if arity == 2 else names[0]
        return f"{var}[{slot}]"

    def _is_float_division(self, expr: BinaryOp) -> bool:
        left_type = self.analyzed.types.get(id(expr.left))
        right_type = self.analyzed.types.get(id(expr.right))
        return left_type is FLOAT or right_type is FLOAT

    def _compile_call(self, expr: FuncCall, slot_maps, arity) -> str:
        spec = self.functions.get(expr.name)
        fn_name = self._bind_function(spec)
        parts = []
        for position, arg in enumerate(expr.args):
            if position in spec.handle_params:
                parts.append(self._bind_handle(spec, arg))
            else:
                parts.append(self._compile(arg, slot_maps, arity))
        return f"{fn_name}({', '.join(parts)})"

    def _bind_function(self, spec: FunctionSpec) -> str:
        name = f"_f_{spec.name.lower()}"
        if name not in self._env:
            implementation = spec.implementation
            if spec.partial:
                def wrapped(*args, _impl=implementation):
                    result = _impl(*args)
                    if result is None:
                        raise DiscardTuple()
                    return result
                self._env[name] = wrapped
            else:
                self._env[name] = implementation
        return name

    def _bind_handle(self, spec: FunctionSpec, arg: Expr) -> str:
        """Resolve a pass-by-handle argument at instantiation time."""
        if isinstance(arg, Literal):
            raw = arg.value
        elif isinstance(arg, Param):
            if arg.name not in self.params:
                raise CodegenError(f"handle parameter ${arg.name} not supplied")
            raw = self.params[arg.name]
        else:
            raise CodegenError(
                f"pass-by-handle argument of {spec.name} must be a literal "
                "or query parameter"
            )
        cache_key = (spec.name.lower(), raw if isinstance(raw, (str, bytes, int, float)) else id(raw))
        if cache_key in self._handle_cache:
            return self._handle_cache[cache_key]
        handle = spec.handle_loader(raw)
        name = f"_h{len(self._handle_cache)}"
        self._env[name] = handle
        self._handle_cache[cache_key] = name
        return name

    # -- interpreted mode -------------------------------------------------------
    def _interp_evaluator(self, slot_maps, arity):
        analyzed = self.analyzed
        functions = self.functions
        params = self.params
        handle_memo: Dict[int, Any] = {}

        def evaluate(expr: Expr, tuples: Tuple[tuple, ...]) -> Any:
            if isinstance(expr, Literal):
                if isinstance(expr.value, str):
                    return expr.value.encode("latin-1")
                return expr.value
            if isinstance(expr, Param):
                return params[expr.name]
            if isinstance(expr, KeyRef):
                return tuples[0][expr.index]
            if isinstance(expr, AggRef):
                return tuples[1][expr.index]
            if isinstance(expr, Column):
                bound = analyzed.binding_of(expr)
                slot_map = (
                    slot_maps[bound.source_index]
                    if bound.source_index < len(slot_maps) else None
                )
                slot = bound.attr_index if slot_map is None else slot_map[bound.attr_index]
                row = tuples[bound.source_index] if arity == 2 else tuples[0]
                return row[slot]
            if isinstance(expr, UnaryOp):
                value = evaluate(expr.operand, tuples)
                return (not value) if expr.op == "NOT" else -value
            if isinstance(expr, BinaryOp):
                if expr.op == "AND":
                    return bool(evaluate(expr.left, tuples)) and bool(
                        evaluate(expr.right, tuples)
                    )
                if expr.op == "OR":
                    return bool(evaluate(expr.left, tuples)) or bool(
                        evaluate(expr.right, tuples)
                    )
                left = evaluate(expr.left, tuples)
                right = evaluate(expr.right, tuples)
                return _apply_binop(expr, left, right, self._is_float_division)
            if isinstance(expr, FuncCall):
                spec = functions.get(expr.name)
                args = []
                for position, arg in enumerate(expr.args):
                    if position in spec.handle_params:
                        key = id(arg)
                        if key not in handle_memo:
                            if isinstance(arg, Literal):
                                raw = arg.value
                            elif isinstance(arg, Param):
                                raw = params[arg.name]
                            else:
                                raise CodegenError(
                                    f"bad handle argument for {spec.name}"
                                )
                            handle_memo[key] = spec.handle_loader(raw)
                        args.append(handle_memo[key])
                    else:
                        args.append(evaluate(arg, tuples))
                result = spec.implementation(*args)
                if spec.partial and result is None:
                    raise DiscardTuple()
                return result
            raise CodegenError(f"cannot evaluate {expr!r}")

        return evaluate

    def _interp_tuple_fn(self, exprs, slot_maps, arity):
        evaluator = self._interp_evaluator(slot_maps, arity)
        def build(*tuples) -> Optional[tuple]:
            try:
                return tuple(evaluator(e, tuples) for e in exprs)
            except DiscardTuple:
                return None
        return build

    def _interp_predicate_fn(self, conjuncts, slot_maps, arity):
        evaluator = self._interp_evaluator(slot_maps, arity)
        def check(*tuples) -> bool:
            try:
                return all(bool(evaluator(c, tuples)) for c in conjuncts)
            except DiscardTuple:
                return False
        return check


def _chained_batch_select(predicate, project):
    """Interpreted-mode batch select: loop the scalar call chain."""
    def run(rows, append):
        d = 0
        for t in rows:
            if not predicate(t):
                d += 1
                continue
            out = project(t)
            if out is None:
                d += 1
                continue
            append(out)
        return d
    return run


def _chained_batch_key(predicate, key_fn):
    """Interpreted-mode batch keying: loop the scalar call chain."""
    def run(rows, append):
        d = 0
        for t in rows:
            if not predicate(t):
                d += 1
                continue
            key = key_fn(t)
            if key is None:
                d += 1
                continue
            append((key, t))
        return d
    return run


def _apply_binop(expr: BinaryOp, left: Any, right: Any, is_float_division) -> Any:
    op = expr.op
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left / right if is_float_division(expr) else left // right
    if op == "%":
        return left % right
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<<":
        return left << right
    if op == ">>":
        return left >> right
    raise CodegenError(f"unknown operator {op!r}")


# -- shard partition kernels (DESIGN section 15) -----------------------------
#
# The sharded runtime hash-partitions raw packets by flow key before any
# LFTA sees them.  Like the fused batch kernels above, the hot loop is
# generated and exec-compiled once per configuration: the shard count
# and shard index are baked in as constants and the IPv4/TCP-or-UDP
# fast-path guard is inlined, so the per-packet cost is one slice, one
# crc32, and one modulo.  The generated sources are recorded in
# :data:`PARTITION_SOURCES` for inspection, mirroring
# ``ExprCompiler.generated_sources``.

#: generated partition-kernel sources, for inspection and tests
PARTITION_SOURCES: List[str] = []

_PARTITION_TEMPLATE = '''\
def {name}(packets, append):
    crc = _crc32
    slow = _slow_hash
    for p in packets:
        d = p.data
        if (len(d) >= 38 and d[12] == 8 and d[13] == 0 and d[14] == 69
                and (d[20] & 31) == 0 and d[21] == 0
                and (d[23] == 6 or d[23] == 17)):
            h = crc(d[26:38]) ^ d[23]
        else:
            h = slow(d)
        if h % {nshards} == {shard}:
            append(p)
'''


def make_partition_filter(nshards: int, shard: int,
                          slow_hash: Callable[[bytes], int]) -> Callable:
    """A fused ``f(packets, append)`` keeping one shard's packets.

    ``append`` receives every packet whose flow hash lands on ``shard``
    under ``nshards``-way partitioning.  The inlined fast path must
    compute exactly :func:`repro.shard.partition.flow_hash` (the
    property test in ``tests/test_shard.py`` holds the two together);
    everything off the fast path defers to ``slow_hash``, which is that
    same canonical function.
    """
    import zlib as _zlib
    name = f"_partition_{nshards}_{shard}"
    source = _PARTITION_TEMPLATE.format(
        name=name, nshards=nshards, shard=shard)
    PARTITION_SOURCES.append(source)
    env = {"_crc32": _zlib.crc32, "_slow_hash": slow_hash}
    code = compile(source, f"<gsql:partition/{nshards}:{shard}>", "exec")
    exec(code, env)
    return env[name]
