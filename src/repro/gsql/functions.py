"""The GSQL user-function registry (paper Section 2.2).

GSQL has no stream-to-relation join; instead, user functions act as
special foreign-key joins.  A function registered here can be:

* **partial** -- it may return no value (``None``), in which case the
  tuple being processed is discarded, exactly as if a join found no
  match;
* **pass-by-handle** in some parameters -- those arguments (literals or
  query parameters only) need expensive pre-processing (compiling a
  regular expression, loading a prefix table), done once at query
  instantiation by the *handle registration function*.

``lfta_safe`` marks functions cheap enough for the low-level FTA; the
planner keeps expensive functions (regex matching) in the HFTA.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.gsql.types import BOOL, FLOAT, GSQLType, INT, IP, STRING, UINT
from repro.net.lpm import PrefixTable
from repro.net.packet import int_to_ip, ip_to_int


class FunctionError(ValueError):
    """Raised for registration and lookup errors."""


@dataclass
class FunctionSpec:
    """Registry entry for one GSQL function."""

    name: str
    implementation: Callable[..., Any]
    arg_types: Tuple[GSQLType, ...]
    return_type: GSQLType
    partial: bool = False
    #: indices (0-based) of pass-by-handle parameters
    handle_params: Tuple[int, ...] = ()
    #: loader(literal_value) -> handle object, run at instantiation time
    handle_loader: Optional[Callable[[Any], Any]] = None
    #: may this function run in an LFTA?
    lfta_safe: bool = True
    #: relative per-call cost (1.0 = a comparison); used by the cost model
    cost: float = 1.0
    #: True if the function is monotone nondecreasing in its first
    #: (non-handle) argument: ordering properties then flow through it
    #: (weakened to non-strict), and punctuation bounds can be mapped by
    #: applying the function itself.
    order_preserving: bool = False

    @property
    def arity(self) -> int:
        return len(self.arg_types)


class FunctionRegistry:
    """Holds :class:`FunctionSpec` entries, looked up case-insensitively."""

    def __init__(self) -> None:
        self._specs: Dict[str, FunctionSpec] = {}

    def register(self, spec: FunctionSpec) -> None:
        key = spec.name.lower()
        if key in self._specs:
            raise FunctionError(f"function {spec.name!r} already registered")
        if spec.handle_params and spec.handle_loader is None:
            raise FunctionError(
                f"function {spec.name!r} has handle params but no loader"
            )
        self._specs[key] = spec

    def get(self, name: str) -> FunctionSpec:
        spec = self._specs.get(name.lower())
        if spec is None:
            raise FunctionError(f"unknown function {name!r}")
        return spec

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._specs

    def names(self):
        return sorted(self._specs)


# ---------------------------------------------------------------------------
# Built-in function implementations
# ---------------------------------------------------------------------------

def _load_prefix_table(source: Any) -> PrefixTable:
    """Handle loader for ``getlpmid``: a filename or iterable of lines."""
    if isinstance(source, PrefixTable):
        return source
    if isinstance(source, (bytes, str)):
        text = source.decode() if isinstance(source, bytes) else source
        looks_inline = "\n" in text or ("/" in text and " " in text.strip())
        if looks_inline:
            # Inline table text ("prefix value" lines) rather than a filename.
            return PrefixTable.from_lines(text.splitlines())
        return PrefixTable.from_file(text)
    if isinstance(source, (list, tuple)):
        return PrefixTable.from_lines(source)
    raise FunctionError(f"cannot build a prefix table from {type(source).__name__}")


def _getlpmid(address: int, table: PrefixTable) -> Optional[int]:
    """Longest-prefix match; None (no match) discards the tuple."""
    return table.lookup(address)


def _load_regex(pattern: Any) -> "re.Pattern":
    if isinstance(pattern, bytes):
        return re.compile(pattern)
    return re.compile(pattern.encode() if isinstance(pattern, str) else pattern)


def _str_match_regex(data: Any, compiled: "re.Pattern") -> bool:
    if data is None:
        return False
    if isinstance(data, str):
        data = data.encode()
    return compiled.search(data) is not None


def _str_find_substr(data: Any, needle: Any) -> bool:
    if data is None:
        return False
    if isinstance(data, str):
        data = data.encode()
    if isinstance(needle, str):
        needle = needle.encode()
    return needle in data


def _getsubnet(address: int, mask_bits: int) -> int:
    if not 0 <= mask_bits <= 32:
        raise ValueError(f"bad mask length {mask_bits}")
    if mask_bits == 0:
        return 0
    return address & (~((1 << (32 - mask_bits)) - 1) & 0xFFFFFFFF)


def _str_len(data: Any) -> int:
    return 0 if data is None else len(data)


def builtin_functions() -> FunctionRegistry:
    """The stock function library.

    ``getlpmid`` and ``str_match_regex`` are the two functions the paper
    names; the rest are the obvious companions analysts ask for.
    """
    registry = FunctionRegistry()
    registry.register(
        FunctionSpec(
            name="getlpmid",
            implementation=_getlpmid,
            arg_types=(IP, STRING),
            return_type=UINT,
            partial=True,
            handle_params=(1,),
            handle_loader=_load_prefix_table,
            lfta_safe=True,  # the trie walk is a few dozen ops
            cost=8.0,
        )
    )
    registry.register(
        FunctionSpec(
            name="str_match_regex",
            implementation=_str_match_regex,
            arg_types=(STRING, STRING),
            return_type=BOOL,
            handle_params=(1,),
            handle_loader=_load_regex,
            lfta_safe=False,  # "Regular expression finding is too expensive for an LFTA"
            cost=60.0,
        )
    )
    registry.register(
        FunctionSpec(
            name="str_find_substr",
            implementation=_str_find_substr,
            arg_types=(STRING, STRING),
            return_type=BOOL,
            lfta_safe=False,
            cost=25.0,
        )
    )
    registry.register(
        FunctionSpec(
            name="getsubnet",
            implementation=_getsubnet,
            arg_types=(IP, UINT),
            return_type=IP,
            cost=2.0,
        )
    )
    registry.register(
        FunctionSpec(
            name="floor",
            implementation=lambda x: int(math.floor(x)),
            arg_types=(FLOAT,),
            return_type=UINT,
            cost=1.0,
            order_preserving=True,
        )
    )
    registry.register(
        FunctionSpec(
            name="str_len",
            implementation=_str_len,
            arg_types=(STRING,),
            return_type=UINT,
            cost=1.0,
        )
    )
    registry.register(
        FunctionSpec(
            name="ip_str",
            implementation=lambda addr: int_to_ip(addr).encode(),
            arg_types=(IP,),
            return_type=STRING,
            lfta_safe=False,
            cost=10.0,
        )
    )
    registry.register(
        FunctionSpec(
            name="ip_from_str",
            implementation=lambda text: ip_to_int(
                text.decode() if isinstance(text, bytes) else text
            ),
            arg_types=(STRING,),
            return_type=IP,
            cost=10.0,
        )
    )
    return registry
