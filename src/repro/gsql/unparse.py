"""Turn GSQL ASTs back into GSQL text.

Used by EXPLAIN-style output, the CLI's ``--show-query`` mode, and the
parser round-trip property tests (``parse(unparse(parse(q)))`` must
equal ``parse(q)``).
"""

from __future__ import annotations

from typing import Union

from repro.gsql.ast_nodes import (
    AggCall,
    BinaryOp,
    Column,
    Expr,
    FuncCall,
    GroupByItem,
    Literal,
    MergeQuery,
    Param,
    SelectItem,
    SelectQuery,
    Star,
    TableRef,
    UnaryOp,
)

_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "=": 4, "<>": 4, "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5, "|": 5, "&": 5, "^": 5, "<<": 5, ">>": 5,
    "*": 6, "/": 6, "%": 6,
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace("'", "\\'").replace("\n", "\\n")


def expr_to_gsql(expr: Expr, parent_precedence: int = 0) -> str:
    """Render an expression, parenthesizing only where precedence demands."""
    if isinstance(expr, Literal):
        value = expr.value
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, bytes):
            return f"'{_escape(value.decode('latin-1'))}'"
        if isinstance(value, str):
            return f"'{_escape(value)}'"
        return repr(value)
    if isinstance(expr, Param):
        return f"${expr.name}"
    if isinstance(expr, Column):
        return f"{expr.table}.{expr.name}" if expr.table else expr.name
    if isinstance(expr, Star):
        return "*"
    if isinstance(expr, UnaryOp):
        if expr.op == "NOT":
            inner = expr_to_gsql(expr.operand, 3)
            text = f"NOT {inner}"
            return f"({text})" if parent_precedence > 3 else text
        return f"-{expr_to_gsql(expr.operand, 7)}"
    if isinstance(expr, BinaryOp):
        precedence = _PRECEDENCE[expr.op]
        left = expr_to_gsql(expr.left, precedence)
        # Right side binds one tighter: operators are left-associative.
        right = expr_to_gsql(expr.right, precedence + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if precedence < parent_precedence else text
    if isinstance(expr, FuncCall):
        args = ", ".join(expr_to_gsql(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, AggCall):
        inner = "*" if expr.arg is None else expr_to_gsql(expr.arg)
        return f"{expr.name}({inner})"
    raise TypeError(f"cannot unparse {expr!r}")


def _select_item(item: SelectItem) -> str:
    text = expr_to_gsql(item.expr)
    return f"{text} AS {item.alias}" if item.alias else text


def _group_item(item: GroupByItem) -> str:
    text = expr_to_gsql(item.expr)
    return f"{text} AS {item.alias}" if item.alias else text


def _source(ref: TableRef) -> str:
    if ref.subquery is not None:
        text = f"( {query_to_gsql(ref.subquery)} )"
    elif ref.interface:
        text = f"{ref.interface}.{ref.name}"
    else:
        text = ref.name
    return f"{text} {ref.alias}" if ref.alias else text


def query_to_gsql(query: Union[SelectQuery, MergeQuery]) -> str:
    """Render a query AST (including its DEFINE block) as GSQL text."""
    lines = []
    if query.defines:
        entries = "; ".join(f"{k} {v}" for k, v in query.defines.items())
        lines.append(f"DEFINE {{ {entries}; }}")
    if isinstance(query, MergeQuery):
        columns = " : ".join(expr_to_gsql(c) for c in query.columns)
        sources = ", ".join(_source(s) for s in query.sources)
        lines.append(f"MERGE {columns}")
        lines.append(f"FROM {sources}")
        return "\n".join(lines)
    lines.append("SELECT " + ", ".join(_select_item(i) for i in query.select_items))
    lines.append("FROM " + ", ".join(_source(s) for s in query.sources))
    if query.where is not None:
        lines.append("WHERE " + expr_to_gsql(query.where))
    if query.group_by:
        lines.append(
            "GROUP BY " + ", ".join(_group_item(i) for i in query.group_by))
    if query.having is not None:
        lines.append("HAVING " + expr_to_gsql(query.having))
    return "\n".join(lines)
