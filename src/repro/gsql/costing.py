"""Static cost estimation for query plans.

The planner's LFTA/HFTA split and the Section 4 simulation both reason
about how expensive a query's pieces are.  This module derives those
numbers *from the plan itself* -- predicate shapes, function costs
(:attr:`FunctionSpec.cost`), and the cost model's unit price -- so the
two stay consistent and EXPLAIN can show where the cycles go.

Costs are expressed in "operations" (1.0 = one comparison) and
converted to microseconds with :attr:`CostEstimate.us_per_operation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.gsql.ast_nodes import AggCall, BinaryOp, Column, Expr, FuncCall, UnaryOp
from repro.gsql.functions import FunctionRegistry
from repro.gsql.planner import LftaPlan, QueryPlan

#: microseconds per abstract operation on the modeled 733 MHz host
DEFAULT_US_PER_OPERATION = 0.02


def expr_operations(expr: Expr, functions: FunctionRegistry) -> float:
    """Abstract operation count to evaluate ``expr`` once."""
    total = 0.0
    for node in expr.walk():
        if isinstance(node, (BinaryOp, UnaryOp)):
            total += 1.0
        elif isinstance(node, Column):
            total += 0.5  # a slot load
        elif isinstance(node, FuncCall):
            total += functions.get(node.name).cost
        elif isinstance(node, AggCall):
            total += 2.0  # state load + update
    return total


@dataclass
class StageCost:
    """Estimated per-input-item cost of one plan stage."""

    name: str
    operations: float
    detail: Dict[str, float] = field(default_factory=dict)

    def us(self, us_per_operation: float = DEFAULT_US_PER_OPERATION) -> float:
        return self.operations * us_per_operation


@dataclass
class CostEstimate:
    """Per-packet LFTA costs and per-tuple HFTA cost for one plan."""

    lfta_stages: List[StageCost]
    hfta_stage: Optional[StageCost]
    us_per_operation: float = DEFAULT_US_PER_OPERATION

    @property
    def lfta_us_per_packet(self) -> float:
        return sum(stage.us(self.us_per_operation)
                   for stage in self.lfta_stages)

    @property
    def hfta_us_per_tuple(self) -> float:
        if self.hfta_stage is None:
            return 0.0
        return self.hfta_stage.us(self.us_per_operation)

    def describe(self) -> str:
        lines = []
        for stage in self.lfta_stages:
            lines.append(
                f"  LFTA {stage.name}: {stage.operations:.1f} ops/packet "
                f"(~{stage.us(self.us_per_operation):.2f} us)"
            )
        if self.hfta_stage is not None:
            stage = self.hfta_stage
            lines.append(
                f"  HFTA {stage.name}: {stage.operations:.1f} ops/tuple "
                f"(~{stage.us(self.us_per_operation):.2f} us)"
            )
        return "\n".join(lines)


def _lfta_cost(plan: LftaPlan, functions: FunctionRegistry) -> StageCost:
    detail: Dict[str, float] = {}
    detail["interpretation"] = 2.0 + 0.5 * len(plan.field_map or {})
    detail["predicates"] = sum(
        expr_operations(conjunct, functions) for conjunct in plan.predicates
    )
    if plan.mode == "projection":
        detail["projection"] = sum(
            expr_operations(expr, functions) for expr in plan.project_exprs
        )
    else:
        detail["group_keys"] = sum(
            expr_operations(expr, functions) for expr in plan.group_exprs
        )
        detail["hash_update"] = 3.0 + 2.0 * len(plan.aggregates)
    return StageCost(plan.name, sum(detail.values()), detail)


def estimate_plan_cost(plan: QueryPlan, functions: FunctionRegistry,
                       us_per_operation: float = DEFAULT_US_PER_OPERATION
                       ) -> CostEstimate:
    """Estimate per-item costs for every stage of ``plan``."""
    lfta_stages = [_lfta_cost(lfta, functions) for lfta in plan.lftas]
    hfta_stage = None
    if plan.hfta is not None:
        hfta = plan.hfta
        detail: Dict[str, float] = {}
        detail["predicates"] = sum(
            expr_operations(conjunct, functions) for conjunct in hfta.predicates
        )
        if hfta.kind == "selection":
            detail["projection"] = sum(
                expr_operations(expr, functions) for expr in hfta.select_exprs
            )
        elif hfta.kind == "aggregation":
            if hfta.final_from_partials:
                detail["combine"] = 2.0 + 2.0 * len(hfta.aggregates)
            else:
                detail["group_keys"] = sum(
                    expr_operations(expr, functions)
                    for expr in hfta.group_exprs
                )
                detail["update"] = 2.0 * len(hfta.aggregates)
            detail["hash"] = 3.0
        elif hfta.kind == "join":
            detail["probe"] = 4.0
            detail["projection"] = sum(
                expr_operations(expr, functions) for expr in hfta.select_exprs
            )
        elif hfta.kind == "merge":
            detail["heap"] = 3.0
        hfta_stage = StageCost(hfta.name, sum(detail.values()), detail)
    return CostEstimate(lfta_stages, hfta_stage, us_per_operation)
