"""GSQL recursive-descent parser.

Grammar (informal)::

    query      := define* (select_query | merge_query)
    define     := DEFINE '{' (ident value ';')* '}'
                | DEFINE ident value ';'
    select     := SELECT select_item (',' select_item)*
                  FROM source (',' source)*
                  [WHERE expr]
                  [GROUP BY group_item (',' group_item)*]
                  [HAVING expr]
    merge      := MERGE column ':' column (':' column)*
                  FROM source (',' source)*
    source     := [ident '.'] ident [ident]          -- interface.name alias
    expr       := disjunction with the usual precedence; comparison
                  operators = <> != < <= > >=; arithmetic + - * / %;
                  function calls; aggregates; $params

The DEFINE section sets query properties; ``query_name`` names the
query so other queries and applications can read its output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.gsql.ast_nodes import (
    AGGREGATE_NAMES,
    AggCall,
    BinaryOp,
    Column,
    Expr,
    FuncCall,
    GroupByItem,
    Literal,
    MergeQuery,
    Param,
    SelectItem,
    SelectQuery,
    Star,
    TableRef,
    UnaryOp,
)
from repro.gsql.lexer import (
    EOF,
    GSQLSyntaxError,
    IDENT,
    KEYWORD,
    NUMBER,
    OP,
    PARAMREF,
    STRING,
    TokenStream,
)

Query = Union[SelectQuery, MergeQuery]


def parse_query(text: str) -> Query:
    """Parse a single GSQL query (SELECT or MERGE, with DEFINE section)."""
    stream = TokenStream.from_text(text)
    query = _parse_one(stream)
    stream.accept(OP, ";")
    if not stream.at_end:
        token = stream.peek()
        raise GSQLSyntaxError(
            f"unexpected trailing input {token.text!r}", token.line, token.column
        )
    return query


def parse_queries(text: str) -> List[Query]:
    """Parse a ``;``-separated batch of GSQL queries."""
    stream = TokenStream.from_text(text)
    queries = []
    while not stream.at_end:
        queries.append(_parse_one(stream))
        stream.accept(OP, ";")
    return queries


def _parse_one(stream: TokenStream) -> Query:
    defines = _parse_defines(stream)
    token = stream.peek()
    if token.matches(KEYWORD, "SELECT"):
        query = _parse_select(stream)
    elif token.matches(KEYWORD, "MERGE"):
        query = _parse_merge(stream)
    else:
        raise GSQLSyntaxError(
            f"expected SELECT or MERGE, found {token.text!r}", token.line, token.column
        )
    query.defines = defines
    return query


def _parse_defines(stream: TokenStream) -> Dict[str, str]:
    defines: Dict[str, str] = {}
    while stream.accept(KEYWORD, "DEFINE"):
        if stream.accept(OP, "{"):
            while not stream.accept(OP, "}"):
                _parse_define_entry(stream, defines)
        else:
            _parse_define_entry(stream, defines)
    return defines


def _parse_define_entry(stream: TokenStream, defines: Dict[str, str]) -> None:
    key_token = stream.peek()
    if key_token.kind not in (IDENT, KEYWORD):
        raise GSQLSyntaxError(
            f"expected property name in DEFINE, found {key_token.text!r}",
            key_token.line,
            key_token.column,
        )
    stream.next()
    key = key_token.text.lower()
    # The paper writes "DEFINE query name tcpdest0": allow a two-word key.
    if key == "query" and stream.peek().matches(IDENT, "name"):
        stream.next()
        key = "query_name"
    value_token = stream.peek()
    if value_token.kind in (IDENT, NUMBER, STRING, KEYWORD):
        stream.next()
        value = str(value_token.value)
    else:
        value = ""
    defines[key] = value
    stream.expect(OP, ";")


def _parse_select(stream: TokenStream) -> SelectQuery:
    stream.expect(KEYWORD, "SELECT")
    select_items = [_parse_select_item(stream)]
    while stream.accept(OP, ","):
        select_items.append(_parse_select_item(stream))
    stream.expect(KEYWORD, "FROM")
    sources = [_parse_source(stream)]
    while stream.accept(OP, ","):
        sources.append(_parse_source(stream))
    where = None
    if stream.accept(KEYWORD, "WHERE"):
        where = _parse_expr(stream)
    group_by: List[GroupByItem] = []
    if stream.accept(KEYWORD, "GROUP"):
        stream.expect(KEYWORD, "BY")
        group_by.append(_parse_group_item(stream))
        while stream.accept(OP, ","):
            group_by.append(_parse_group_item(stream))
    having = None
    if stream.accept(KEYWORD, "HAVING"):
        having = _parse_expr(stream)
    return SelectQuery(
        select_items=select_items,
        sources=sources,
        where=where,
        group_by=group_by,
        having=having,
    )


def _parse_merge(stream: TokenStream) -> MergeQuery:
    stream.expect(KEYWORD, "MERGE")
    columns = [_parse_merge_column(stream)]
    while stream.accept(OP, ":"):
        columns.append(_parse_merge_column(stream))
    stream.expect(KEYWORD, "FROM")
    sources = [_parse_source(stream)]
    while stream.accept(OP, ","):
        sources.append(_parse_source(stream))
    if len(columns) != len(sources):
        token = stream.peek()
        raise GSQLSyntaxError(
            f"MERGE lists {len(columns)} columns but {len(sources)} sources",
            token.line,
            token.column,
        )
    return MergeQuery(columns=columns, sources=sources)


def _parse_merge_column(stream: TokenStream) -> Column:
    first = stream.expect(IDENT)
    if stream.accept(OP, "."):
        second = stream.expect(IDENT)
        return Column(name=second.text, table=first.text)
    return Column(name=first.text)


def _parse_source(stream: TokenStream) -> TableRef:
    # Subquery in the FROM clause: ( SELECT ... ) [alias]
    if stream.accept(OP, "("):
        inner = _parse_one(stream)
        if not isinstance(inner, SelectQuery):
            token = stream.peek()
            raise GSQLSyntaxError("only SELECT subqueries are allowed in FROM",
                                  token.line, token.column)
        stream.expect(OP, ")")
        alias = None
        if stream.peek().kind == IDENT:
            alias = stream.next().text
        name = inner.name or alias or "subquery"
        return TableRef(name=name, alias=alias, subquery=inner)
    first = stream.expect(IDENT)
    interface: Optional[str] = None
    name = first.text
    if stream.accept(OP, "."):
        interface = first.text
        name = stream.expect(IDENT).text
    alias = None
    token = stream.peek()
    if token.kind == IDENT:
        alias = stream.next().text
    return TableRef(name=name, interface=interface, alias=alias)


def _parse_select_item(stream: TokenStream) -> SelectItem:
    # `SELECT *` (only as a whole item, not inside expressions)
    if stream.peek().matches(OP, "*") and stream.peek(1).matches(OP, ","):
        stream.next()
        return SelectItem(expr=Star())
    if stream.peek().matches(OP, "*") and stream.peek(1).matches(KEYWORD, "FROM"):
        stream.next()
        return SelectItem(expr=Star())
    expr = _parse_expr(stream)
    alias = None
    if stream.accept(KEYWORD, "AS"):
        alias = stream.expect(IDENT).text
    return SelectItem(expr=expr, alias=alias)


def _parse_group_item(stream: TokenStream) -> GroupByItem:
    expr = _parse_expr(stream)
    alias = None
    if stream.accept(KEYWORD, "AS"):
        alias = stream.expect(IDENT).text
    return GroupByItem(expr=expr, alias=alias)


# ---------------------------------------------------------------------------
# Expressions (precedence climbing)
# ---------------------------------------------------------------------------

_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}
_ADDITIVE = {"+", "-", "|", "&", "^", "<<", ">>"}
_MULTIPLICATIVE = {"*", "/", "%"}


def _parse_expr(stream: TokenStream) -> Expr:
    return _parse_or(stream)


def _parse_or(stream: TokenStream) -> Expr:
    left = _parse_and(stream)
    while stream.accept(KEYWORD, "OR"):
        right = _parse_and(stream)
        left = BinaryOp("OR", left, right)
    return left


def _parse_and(stream: TokenStream) -> Expr:
    left = _parse_not(stream)
    while stream.accept(KEYWORD, "AND"):
        right = _parse_not(stream)
        left = BinaryOp("AND", left, right)
    return left


def _parse_not(stream: TokenStream) -> Expr:
    if stream.accept(KEYWORD, "NOT"):
        return UnaryOp("NOT", _parse_not(stream))
    return _parse_comparison(stream)


def _parse_comparison(stream: TokenStream) -> Expr:
    left = _parse_additive(stream)
    token = stream.peek()
    if token.kind == OP and token.text in _COMPARISONS:
        stream.next()
        op = "<>" if token.text == "!=" else token.text
        right = _parse_additive(stream)
        return BinaryOp(op, left, right)
    # `expr IN (v1, v2, ...)` / `expr NOT IN (...)`: desugared to an
    # =-chain, so it costs nothing downstream (planner, codegen, BPF).
    negated = False
    if token.matches(KEYWORD, "NOT") and stream.peek(1).matches(KEYWORD, "IN"):
        stream.next()
        negated = True
        token = stream.peek()
    if token.matches(KEYWORD, "IN"):
        stream.next()
        stream.expect(OP, "(")
        alternatives = [_parse_additive(stream)]
        while stream.accept(OP, ","):
            alternatives.append(_parse_additive(stream))
        stream.expect(OP, ")")
        expr: Expr = BinaryOp("=", left, alternatives[0])
        for alternative in alternatives[1:]:
            expr = BinaryOp("OR", expr, BinaryOp("=", left, alternative))
        return UnaryOp("NOT", expr) if negated else expr
    return left


def _parse_additive(stream: TokenStream) -> Expr:
    left = _parse_multiplicative(stream)
    while True:
        token = stream.peek()
        if token.kind == OP and token.text in _ADDITIVE:
            stream.next()
            right = _parse_multiplicative(stream)
            left = BinaryOp(token.text, left, right)
        else:
            return left


def _parse_multiplicative(stream: TokenStream) -> Expr:
    left = _parse_unary(stream)
    while True:
        token = stream.peek()
        if token.kind == OP and token.text in _MULTIPLICATIVE:
            stream.next()
            right = _parse_unary(stream)
            left = BinaryOp(token.text, left, right)
        else:
            return left


def _parse_unary(stream: TokenStream) -> Expr:
    if stream.accept(OP, "-"):
        return UnaryOp("-", _parse_unary(stream))
    return _parse_primary(stream)


def _parse_primary(stream: TokenStream) -> Expr:
    token = stream.peek()
    if token.kind == NUMBER:
        stream.next()
        return Literal(token.value)
    if token.kind == STRING:
        stream.next()
        return Literal(token.value)
    if token.kind == PARAMREF:
        stream.next()
        return Param(str(token.value))
    if token.matches(KEYWORD, "TRUE"):
        stream.next()
        return Literal(True)
    if token.matches(KEYWORD, "FALSE"):
        stream.next()
        return Literal(False)
    if stream.accept(OP, "("):
        expr = _parse_expr(stream)
        stream.expect(OP, ")")
        return expr
    if token.kind == IDENT:
        stream.next()
        name = token.text
        # Function call or aggregate
        if stream.accept(OP, "("):
            if name.upper() in AGGREGATE_NAMES:
                if stream.accept(OP, "*"):
                    stream.expect(OP, ")")
                    return AggCall(name.upper(), None)
                arg = _parse_expr(stream)
                stream.expect(OP, ")")
                return AggCall(name.upper(), arg)
            args: List[Expr] = []
            if not stream.accept(OP, ")"):
                args.append(_parse_expr(stream))
                while stream.accept(OP, ","):
                    args.append(_parse_expr(stream))
                stream.expect(OP, ")")
            return FuncCall(name, tuple(args))
        # Qualified column
        if stream.accept(OP, "."):
            field = stream.expect(IDENT)
            return Column(name=field.text, table=name)
        return Column(name=name)
    raise GSQLSyntaxError(
        f"unexpected token {token.text or 'end of input'!r} in expression",
        token.line,
        token.column,
    )
