"""Seeded, virtual-time fault injection for the Gigascope reproduction.

Stream monitors are expected to give deterministic, specifiable
behavior under faults; this package injects the faults.  Every injector
is seeded (through :mod:`repro.determinism`) and keyed to *stream time*
-- the virtual clock the packets carry -- so a faulty run replays
exactly like a healthy one.

Injectors:

* :class:`RingLossBurst` -- the card is blind for a window: every
  arriving packet is a ring drop (or a seeded coin flip of them).
* :class:`ChannelOverflowStorm` -- inter-node channels shrink to a
  tiny capacity for a window, forcing overflow drops.
* :class:`ClockSkew` -- one interface's timestamps run fast or slow,
  the multi-source ordering hazard of Section 2.
* :class:`HeartbeatSilence` -- the stream manager's ordering-update
  tokens stop for a window (blocked-operator behavior under silence).
* :class:`OperatorFault` -- a named query node raises on its Nth
  input; the RTS quarantines it and keeps its siblings running.

Arm injectors with :meth:`repro.core.engine.Gigascope.inject_faults`
or ``gsq --fault kind:key=value,...``; every injector keeps its own
drop/trigger ledger (:meth:`FaultInjector.report`) so injected loss is
accounted end to end like every other loss in the system.
"""

from repro.faults.injectors import (
    ChannelOverflowStorm,
    ClockSkew,
    FaultInjector,
    HeartbeatSilence,
    OperatorFault,
    RingLossBurst,
)
from repro.faults.spec import parse_fault_spec

__all__ = [
    "FaultInjector",
    "RingLossBurst",
    "ChannelOverflowStorm",
    "ClockSkew",
    "HeartbeatSilence",
    "OperatorFault",
    "parse_fault_spec",
]
