"""Parse ``--fault`` command-line specs into injectors.

Grammar: ``kind:key=value,key=value,...`` -- the same shape as the
``--shed`` policy specs.  Values are parsed as int, then float, then
left as strings.  Examples::

    ring_burst:at=0.5,duration=0.2            # total card blindness
    ring_burst:at=0.5,duration=0.2,drop=0.5   # seeded coin-flip loss
    channel_storm:at=1.0,duration=0.5,capacity=4
    clock_skew:iface=eth1,skew=0.25
    heartbeat_silence:at=2.0,duration=3.0
    operator_error:node=flows,at_tuple=100
    operator_error:node=flows,at_tuple=100,times=1   # transient crash
"""

from __future__ import annotations

from typing import Any, Dict

from repro.faults.injectors import (
    ChannelOverflowStorm,
    ClockSkew,
    FaultInjector,
    HeartbeatSilence,
    OperatorFault,
    RingLossBurst,
)


def _parse_options(text: str) -> Dict[str, Any]:
    options: Dict[str, Any] = {}
    if not text:
        return options
    for part in text.split(","):
        key, sep, value = part.partition("=")
        if not sep or not key:
            raise ValueError(f"bad fault option {part!r}; use key=value")
        for cast in (int, float):
            try:
                value = cast(value)
                break
            except ValueError:
                continue
        options[key.strip()] = value
    return options


def _require(options: Dict[str, Any], kind: str, *keys: str) -> None:
    missing = [key for key in keys if key not in options]
    if missing:
        raise ValueError(f"{kind} fault needs {', '.join(missing)}")


def parse_fault_spec(spec: str, seed: int = 0) -> FaultInjector:
    """Build an injector from a ``kind:key=value,...`` spec string."""
    kind, _, rest = spec.partition(":")
    kind = kind.strip()
    options = _parse_options(rest)
    if kind == "ring_burst":
        _require(options, kind, "at", "duration")
        return RingLossBurst(
            at=options["at"], duration=options["duration"],
            drop_prob=options.get("drop", 1.0), seed=seed,
        )
    if kind == "channel_storm":
        _require(options, kind, "at", "duration")
        return ChannelOverflowStorm(
            at=options["at"], duration=options["duration"],
            capacity=options.get("capacity", 4),
        )
    if kind == "clock_skew":
        _require(options, kind, "iface", "skew")
        return ClockSkew(
            interface=str(options["iface"]), skew_s=options["skew"],
            at=options.get("at", 0.0),
            duration=options.get("duration", float("inf")),
        )
    if kind == "heartbeat_silence":
        _require(options, kind, "at", "duration")
        return HeartbeatSilence(at=options["at"],
                                duration=options["duration"])
    if kind == "operator_error":
        _require(options, kind, "node")
        times = options.get("times")
        return OperatorFault(node=str(options["node"]),
                             at_tuple=options.get("at_tuple", 1),
                             times=int(times) if times is not None else None)
    raise ValueError(
        f"unknown fault kind {kind!r}; known: ring_burst, channel_storm, "
        f"clock_skew, heartbeat_silence, operator_error"
    )
