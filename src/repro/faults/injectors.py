"""The fault injectors: seeded, windowed in virtual (stream) time.

Each injector implements a small hook surface the runtime consults:

* ``on_packet(packet, rts)`` -- called by ``RuntimeSystem.feed_packet``
  before dispatch; may transform the packet (clock skew), drop it
  (ring-loss burst armed without a NIC), or pass it through.
* ``on_cycle(stream_time, rts)`` -- called once per pump cycle; used by
  the channel-overflow storm to squeeze and release capacities.
* ``silences_heartbeat(stream_time)`` -- consulted by the heartbeat
  source.
* ``drops_packet(stream_time)`` -- consulted by a :class:`~repro.nic.
  nic.Nic` the injector was armed on (card-side ring loss).

Nothing here uses wall-clock time or process-randomized hashing: a
window is ``[at, at + duration)`` in stream seconds, and probabilistic
drops draw from a :func:`repro.determinism.rng_for` stream, so a faulty
run is as replayable as a healthy one.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from repro.determinism import rng_for


class FaultInjector:
    """Base class: an inert fault with a stream-time activation window."""

    kind = "fault"

    def __init__(self, at: float = 0.0, duration: float = math.inf) -> None:
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.at = at
        self.duration = duration
        self.armed = False

    def active(self, stream_time: float) -> bool:
        return self.at <= stream_time < self.at + self.duration

    # -- hook surface (defaults are no-ops) --------------------------------
    def arm(self, rts, nics=()) -> None:
        """Attach to a runtime system (and optionally simulated NICs)."""
        self.armed = True
        rts.install_fault(self)

    def on_packet(self, packet, rts):
        """Transform/drop a packet pre-dispatch; None means dropped."""
        return packet

    def on_cycle(self, stream_time: float, rts) -> None:
        """Called once per pump cycle."""

    def silences_heartbeat(self, stream_time: float) -> bool:
        return False

    def drops_packet(self, stream_time: float) -> bool:
        """Card-side hook: should the NIC ring-drop this arrival?"""
        return False

    def report(self) -> Dict[str, Any]:
        return {"kind": self.kind, "at": self.at, "duration": self.duration}


class RingLossBurst(FaultInjector):
    """The card goes blind for a window: arrivals become ring drops.

    Armed on a :class:`~repro.nic.nic.Nic`, drops count against the
    card's ``ring_dropped`` (indistinguishable from a too-slow card,
    which is the point).  Armed on a bare RTS (no NIC in the path, e.g.
    the CLI feeding a pcap), the burst drops packets before dispatch
    and keeps its own ledger.  ``drop_prob`` < 1 makes the burst a
    seeded coin flip per arrival instead of total silence.
    """

    kind = "ring_burst"

    def __init__(self, at: float, duration: float,
                 drop_prob: float = 1.0, seed: int = 0) -> None:
        super().__init__(at, duration)
        if not 0.0 < drop_prob <= 1.0:
            raise ValueError(f"drop_prob must be in (0, 1], got {drop_prob}")
        self.drop_prob = drop_prob
        self.dropped = 0
        self._rng = rng_for(seed, "fault.ring_burst", at, duration)
        self._card_armed = False

    def arm(self, rts, nics=()) -> None:
        super().arm(rts, nics)
        for nic in nics:
            nic.fault = self
            self._card_armed = True

    def drops_packet(self, stream_time: float) -> bool:
        if not self.active(stream_time):
            return False
        if self.drop_prob < 1.0 and self._rng.random() >= self.drop_prob:
            return False
        self.dropped += 1
        return True

    def on_packet(self, packet, rts):
        # With a NIC armed, the card already took the loss; don't double-drop.
        if self._card_armed:
            return packet
        if self.drops_packet(packet.timestamp):
            return None
        return packet

    def report(self) -> Dict[str, Any]:
        out = super().report()
        out.update(drop_prob=self.drop_prob, dropped=self.dropped,
                   on_card=self._card_armed)
        return out


class ChannelOverflowStorm(FaultInjector):
    """Inter-node channels shrink to ``capacity`` for a window.

    Models a slow consumer / shared-memory squeeze: while active, every
    channel behaves as if its capacity were ``capacity``; data tuples
    beyond it are overflow drops, accounted exactly like organic
    overflow (and watched by the overload control plane).  The storm's
    own ledger records the drops that happened on its watch.
    """

    kind = "channel_storm"

    def __init__(self, at: float, duration: float, capacity: int = 4) -> None:
        super().__init__(at, duration)
        if capacity <= 0:
            raise ValueError("storm capacity must be positive")
        self.capacity = capacity
        self.dropped_during = 0
        self.cycles_active = 0
        self._squeezing = False
        self._drops_at_onset = 0

    def _total_drops(self, rts) -> int:
        return sum(channel.stats.dropped for channel in rts.channels())

    def on_cycle(self, stream_time: float, rts) -> None:
        active = self.active(stream_time)
        if active and not self._squeezing:
            self._squeezing = True
            self._drops_at_onset = self._total_drops(rts)
            for channel in rts.channels():
                channel.fault_capacity = self.capacity
        elif active:
            # Channels created mid-storm (new subscriptions) get squeezed too.
            for channel in rts.channels():
                if channel.fault_capacity is None:
                    channel.fault_capacity = self.capacity
        elif self._squeezing:
            self._squeezing = False
            self.dropped_during += self._total_drops(rts) - self._drops_at_onset
            for channel in rts.channels():
                channel.fault_capacity = None
        if active:
            self.cycles_active += 1

    def report(self) -> Dict[str, Any]:
        out = super().report()
        out.update(capacity=self.capacity, cycles_active=self.cycles_active,
                   dropped_during=self.dropped_during)
        return out


class ClockSkew(FaultInjector):
    """One interface's clock runs offset by ``skew_s`` seconds.

    The multi-interface ordering hazard: merge and join operators see
    one input's timestamps shifted, exercising their buffering and the
    heartbeat machinery.  Applied pre-dispatch, so everything downstream
    (including the drop ledger) sees the skewed clock consistently.
    """

    kind = "clock_skew"

    def __init__(self, interface: str, skew_s: float,
                 at: float = 0.0, duration: float = math.inf) -> None:
        super().__init__(at, duration)
        self.interface = interface
        self.skew_s = skew_s
        self.skewed = 0

    def on_packet(self, packet, rts):
        if packet.interface != self.interface:
            return packet
        if not self.active(packet.timestamp):
            return packet
        self.skewed += 1
        from dataclasses import replace
        return replace(packet, timestamp=packet.timestamp + self.skew_s)

    def report(self) -> Dict[str, Any]:
        out = super().report()
        out.update(interface=self.interface, skew_s=self.skew_s,
                   skewed=self.skewed)
        return out


class HeartbeatSilence(FaultInjector):
    """The stream manager's heartbeats stop for a window.

    Blocked operators (merge, windowed aggregation) depend on the
    ordering-update tokens of Section 3; silencing them exposes
    stalls that packet loss alone never would.  Suppressed tokens are
    counted on both the injector and the RTS.
    """

    kind = "heartbeat_silence"

    def __init__(self, at: float, duration: float) -> None:
        super().__init__(at, duration)
        self.suppressed = 0

    def silences_heartbeat(self, stream_time: float) -> bool:
        if self.active(stream_time):
            self.suppressed += 1
            return True
        return False

    def report(self) -> Dict[str, Any]:
        out = super().report()
        out.update(suppressed=self.suppressed)
        return out


class OperatorFault(FaultInjector):
    """A named query node raises on its Nth input item.

    Wraps the node's handlers so the ``at_tuple``-th tuple (or packet,
    for an LFTA) raises ``RuntimeError``.  The RTS quarantines the node
    -- counts it, detaches it, flushes its downstream -- and keeps every
    sibling running; see ``RuntimeSystem._quarantine``.

    ``times`` bounds how often the fault fires (default: forever once
    tripped).  A transient crash -- ``times=1`` -- is what the recovery
    supervisor is built for: the restart's journal replay passes the
    already-spent injector and completes the gap repair.
    """

    kind = "operator_error"

    def __init__(self, node: str, at_tuple: int = 1,
                 message: Optional[str] = None,
                 times: Optional[int] = None) -> None:
        super().__init__(0.0, math.inf)
        if at_tuple < 1:
            raise ValueError("at_tuple must be >= 1")
        if times is not None and times < 1:
            raise ValueError("times must be >= 1")
        self.node = node
        self.at_tuple = at_tuple
        self.times = times
        self.message = message or f"injected fault in {node!r}"
        self.triggered = 0
        self._count = 0

    def arm(self, rts, nics=()) -> None:
        super().arm(rts, nics)
        node = rts.node(self.node)

        def check(self=self):
            self._count += 1
            if self._count >= self.at_tuple and (
                    self.times is None or self.triggered < self.times):
                self.triggered += 1
                raise RuntimeError(self.message)

        original_on_tuple = node.on_tuple

        def failing_on_tuple(row, input_index):
            check()
            original_on_tuple(row, input_index)

        node.on_tuple = failing_on_tuple
        accept = getattr(node, "accept_packet", None)
        if accept is not None:
            def failing_accept(packet, view=None):
                check()
                if view is not None:
                    accept(packet, view)
                else:
                    accept(packet)

            node.accept_packet = failing_accept

    def report(self) -> Dict[str, Any]:
        out = super().report()
        out.update(node=self.node, at_tuple=self.at_tuple,
                   times=self.times, triggered=self.triggered)
        return out


def fault_reports(faults: List[FaultInjector]) -> List[Dict[str, Any]]:
    """The ledgers of every armed injector, in arming order."""
    return [fault.report() for fault in faults]
