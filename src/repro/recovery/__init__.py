"""Checkpoint/restore and supervised node recovery (DESIGN section 11).

* :mod:`repro.recovery.wire` -- the versioned, ``stable_hash``-checksummed
  snapshot wire format every stateful operator serializes into.
* :mod:`repro.recovery.supervisor` -- crash-consistent periodic
  checkpoints, input journaling, bounded-retry restart with journal
  replay and exactly-once re-emission.

Enable via :meth:`repro.core.engine.Gigascope.enable_recovery` or the
CLI's ``--recover`` / ``--checkpoint-interval`` / ``--max-restarts``.
"""

from repro.recovery.supervisor import RecoverySupervisor
from repro.recovery.wire import (
    MAGIC,
    SNAPSHOT_VERSION,
    SnapshotCorruptError,
    SnapshotError,
    SnapshotVersionError,
    decode_snapshot,
    encode_snapshot,
)

__all__ = [
    "MAGIC",
    "SNAPSHOT_VERSION",
    "RecoverySupervisor",
    "SnapshotCorruptError",
    "SnapshotError",
    "SnapshotVersionError",
    "decode_snapshot",
    "encode_snapshot",
]
