"""Supervised node recovery: checkpoints, journal replay, retry budget.

PR 3's quarantine contains a failing node permanently: it is detached
and all accumulated state (aggregate groups, join windows, reassembly
buffers) is lost for the rest of the run -- the opposite of what a
long-running link monitor needs.  The supervisor upgrades that into
bounded-retry restart (DESIGN section 11):

* **Checkpoints.**  Periodically in virtual time, and only at pump
  boundaries where every channel is quiescent, the supervisor snapshots
  each node's state (:meth:`QueryNode.snapshot_state`) into the
  versioned, checksummed wire format of :mod:`repro.recovery.wire`.
  Encoding happens immediately, so the stored bytes are isolated from
  later mutation of the live state.

* **Journals.**  Between checkpoints, the RTS journals its inputs
  *before* dispatching them: captured packets and heartbeat times on
  the packet path, popped channel items per HFTA node on the pump
  path.  The journal is exactly the gap between the last checkpoint
  and a crash.

* **Recovery.**  When a node raises, the RTS offers the failure here
  instead of quarantining.  The first attempt is inline: restore the
  last checkpoint, replay the node's journal segment, and return to
  normal scheduling -- deterministic operators land byte-identical to
  a run without the crash (enforced by ``replay verify-recovery``).
  Rows the node emitted between the checkpoint and the crash were
  already delivered downstream, so an emit gate suppresses exactly
  that many re-emissions (counting them in the node's statistics), and
  sinks skip re-writing rows that already reached the file -- output
  stays exactly-once.

* **Backoff and the budget.**  A failed attempt suspends the node
  (marked, skipped by schedulers, producers keep it wired) and retries
  after an exponential backoff in virtual time.  When the retry budget
  is exhausted the node degrades to today's permanent quarantine with
  identical containment accounting.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from repro.core.channels import all_quiescent
from repro.recovery.wire import SnapshotError, decode_snapshot, encode_snapshot


class _Suspension:
    """A node waiting out its backoff before the next restart attempt."""

    __slots__ = ("node", "error", "retry_at")

    def __init__(self, node, error: Exception, retry_at: float) -> None:
        self.node = node
        self.error = error
        self.retry_at = retry_at


class _EmitGate:
    """Suppress re-emission of rows already produced before the crash.

    Journal replay regenerates every row from the checkpoint up to the
    crash point; those up to the crash were already pushed downstream
    (and possibly consumed), so the first ``skip_rows`` emissions are
    swallowed -- still counted in the node's output statistics, never
    pushed again.  Rows past the crash point emit normally: they are
    genuinely new.  Punctuation gets the same treatment, mirroring
    ``emit_punctuation``'s skip-empty check so counters line up.
    """

    def __init__(self, node, skip_rows: int, skip_punctuations: int,
                 supervisor: "RecoverySupervisor") -> None:
        self.node = node
        self.skip_rows = skip_rows
        self.skip_punctuations = skip_punctuations
        self.supervisor = supervisor
        cls = type(node)
        self._emit = cls.emit.__get__(node)
        self._emit_punctuation = cls.emit_punctuation.__get__(node)
        node.emit = self.emit
        node.emit_many = self.emit_many
        node.emit_punctuation = self.emit_punctuation

    def emit(self, row: tuple) -> None:
        if self.skip_rows > 0:
            self.skip_rows -= 1
            self.node.stats.tuples_out += 1
            self.supervisor.suppressed_rows += 1
            return
        self._emit(row)

    def emit_many(self, rows) -> None:
        for row in rows:
            self.emit(row)

    def emit_punctuation(self, punctuation) -> None:
        if not punctuation:
            return
        if self.skip_punctuations > 0:
            self.skip_punctuations -= 1
            self.node.stats.punctuations_out += 1
            self.supervisor.suppressed_punctuations += 1
            return
        self._emit_punctuation(punctuation)

    def remove(self) -> None:
        for attr in ("emit", "emit_many", "emit_punctuation"):
            self.node.__dict__.pop(attr, None)


class RecoverySupervisor:
    """Checkpoint/restore supervisor attached to one :class:`RuntimeSystem`."""

    def __init__(self, rts, checkpoint_interval: float = 1.0,
                 max_restarts: int = 3, backoff_base: float = 0.25,
                 backoff_factor: float = 2.0) -> None:
        if checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if backoff_base <= 0 or backoff_factor < 1.0:
            raise ValueError("backoff must be positive and non-shrinking")
        self.rts = rts
        self.checkpoint_interval = checkpoint_interval
        self.max_restarts = max_restarts
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        #: node name -> encoded snapshot bytes from the last checkpoint
        self.checkpoints: Dict[str, bytes] = {}
        self.checkpoint_time = -math.inf
        self.checkpoints_taken = 0
        self.checkpoint_bytes = 0
        #: node name -> restart attempts consumed so far
        self.restarts: Dict[str, int] = {}
        self.restarts_total = 0
        self.replayed_items = 0
        self.suppressed_rows = 0
        self.suppressed_punctuations = 0
        self.retries_exhausted = 0
        self._packet_journal: List[Tuple[str, Any]] = []
        self._item_journals: Dict[str, List[Tuple[Any, int]]] = {}
        self._suspended: Dict[str, _Suspension] = {}
        rts.supervisor = self
        if rts.metrics is not None:
            from repro.obs.collectors import install_recovery_metrics
            install_recovery_metrics(rts.metrics, self)
        if rts.started:
            self.on_start()

    # -- journals (appended by the RTS before dispatch) --------------------
    #
    # Journaling sits on the per-packet hot path, so entries are kept
    # allocation-free: the packet journal stores the captured packets
    # themselves with heartbeats as bare floats (the two are told apart
    # by type at replay time, which is rare), and the item journals
    # store whole dispatched blocks, one append per block.

    def journal_packet(self, packet) -> None:
        self._packet_journal.append(packet)

    def journal_packets(self, packets) -> None:
        self._packet_journal.extend(packets)

    def journal_heartbeat(self, stream_time: float) -> None:
        self._packet_journal.append(stream_time)

    def journal_item(self, node, item, input_index: int) -> None:
        journal = self._item_journals.get(node.name)
        if journal is None:
            journal = self._item_journals[node.name] = []
        journal.append(((item,), input_index))

    def journal_items(self, node, items, input_index: int) -> None:
        journal = self._item_journals.get(node.name)
        if journal is None:
            journal = self._item_journals[node.name] = []
        journal.append((items, input_index))

    @property
    def journal_len(self) -> int:
        return (len(self._packet_journal)
                + sum(len(items) for journal in self._item_journals.values()
                      for items, _ in journal))

    # -- checkpointing ------------------------------------------------------
    def on_start(self) -> None:
        """Cut the baseline checkpoint (empty state, empty journal)."""
        self.take_checkpoint(self.rts.stream_time)

    def checkpoint_due(self, stream_time: float) -> bool:
        # A suspension defers checkpoints: truncating the journal would
        # orphan the replay data the suspended node needs to resume.
        if self._suspended or math.isinf(stream_time):
            return False
        if math.isinf(self.checkpoint_time):
            return True
        return stream_time >= self.checkpoint_time + self.checkpoint_interval

    def take_checkpoint(self, stream_time: float) -> bool:
        """Snapshot every live node and truncate the journals."""
        rts = self.rts
        # Quiescence covers the node-to-node channels only: an item in
        # flight there is state the checkpoint would miss.  Application
        # subscription channels are delivery, not computation -- they
        # drain at the subscriber's leisure -- and the emit gate keeps
        # replay from re-pushing into them.
        internal = (channel for node in rts._nodes.values()
                    for _producer, channel in node.input_links)
        if not all_quiescent(internal):
            return False
        blobs: Dict[str, bytes] = {}
        total = 0
        for name, node in rts.iter_nodes():
            if node.quarantined is not None:
                continue
            blob = encode_snapshot({
                "node": name,
                "type": type(node).__name__,
                "state": node.snapshot_state(),
            })
            blobs[name] = blob
            total += len(blob)
        self.checkpoints = blobs
        self.checkpoint_time = stream_time
        self.checkpoints_taken += 1
        self.checkpoint_bytes = total
        self._packet_journal.clear()
        self._item_journals.clear()
        return True

    # -- scheduler hooks ----------------------------------------------------
    def on_pump_begin(self, stream_time: float) -> None:
        if self._suspended:
            self.resume_due(stream_time)

    def on_pump_end(self, stream_time: float) -> None:
        if self.checkpoint_due(stream_time):
            self.take_checkpoint(stream_time)

    def finalize(self) -> None:
        """Force every pending retry before end-of-stream flush.

        Terminates: each forced attempt either recovers the node or
        consumes restart budget, and an exhausted budget degrades to
        permanent quarantine.
        """
        while self._suspended:
            self.resume_due(self.rts.stream_time, force=True)

    # -- failure handling ---------------------------------------------------
    def on_failure(self, node, error: Exception) -> bool:
        """Offer a crashing node recovery; False sends it to quarantine."""
        name = node.name
        if name not in self.checkpoints:
            return False
        if self.restarts.get(name, 0) >= self.max_restarts:
            self.retries_exhausted += 1
            return False
        self.restarts[name] = self.restarts.get(name, 0) + 1
        self.restarts_total += 1
        ok, replay_error = self._attempt(node)
        if ok:
            return True
        return self._suspend(node, replay_error or error)

    def _attempt(self, node) -> Tuple[bool, Optional[Exception]]:
        """Restore the last checkpoint and replay the journal gap."""
        crash_marks = node.recovery_marks()
        try:
            payload = decode_snapshot(self.checkpoints[node.name])
            node.restore_state(payload["state"])
        except (SnapshotError, KeyError, ValueError, TypeError) as error:
            return False, error
        node.begin_replay(crash_marks)
        gate = _EmitGate(
            node,
            crash_marks["tuples_out"] - node.stats.tuples_out,
            crash_marks["punctuations_out"] - node.stats.punctuations_out,
            self,
        )
        try:
            replayed = self._replay(node)
        except Exception as error:
            return False, error
        finally:
            gate.remove()
        self.replayed_items += replayed
        return True, None

    def _interface_of(self, node) -> Optional[str]:
        for interface, consumers in self.rts._packet_consumers.items():
            if node in consumers:
                return interface
        return None

    def _replay(self, node) -> int:
        """Re-deliver the node's journaled inputs since the checkpoint."""
        count = 0
        interface = self._interface_of(node)
        if interface is not None:
            # Packet consumer: its slice of the global packet journal
            # (an "any" consumer sees every packet), with heartbeats at
            # their original positions.
            wants_any = interface == "any"
            on_heartbeat = getattr(node, "on_heartbeat", None)
            for entry in list(self._packet_journal):
                if type(entry) is float:  # a heartbeat marker
                    if on_heartbeat is not None:
                        on_heartbeat(entry)
                elif wants_any or entry.interface == interface:
                    node.accept_packet(entry)
                    count += 1
        else:
            for items, input_index in list(self._item_journals.get(node.name, ())):
                for item in items:
                    node.dispatch(item, input_index)
                    count += 1
        return count

    # -- backoff / suspension ------------------------------------------------
    def _suspend(self, node, error: Exception) -> bool:
        """Park the node until its backoff expires; False = budget gone."""
        name = node.name
        used = self.restarts.get(name, 0)
        if used >= self.max_restarts:
            self.retries_exhausted += 1
            return False
        delay = self.backoff_base * self.backoff_factor ** max(0, used - 1)
        stream_time = self.rts.stream_time
        retry_at = stream_time + delay if not math.isinf(stream_time) else delay
        # The quarantined marker buys the existing skip behavior in
        # every scheduler loop for free; unlike a real quarantine the
        # node stays registered, wired, and uncounted in the
        # containment ledger.
        node.quarantined = f"recovering: {type(error).__name__}: {error}"
        self.rts._batch_plans.clear()
        self._suspended[name] = _Suspension(node, error, retry_at)
        return True

    def resume_due(self, stream_time: float, force: bool = False) -> None:
        """Retry suspended nodes whose backoff has expired."""
        for name in list(self._suspended):
            suspension = self._suspended[name]
            if not force and stream_time < suspension.retry_at:
                continue
            del self._suspended[name]
            node = suspension.node
            node.quarantined = None
            self.rts._batch_plans.clear()
            if self.restarts.get(name, 0) >= self.max_restarts:
                self.retries_exhausted += 1
                self.rts._quarantine(node, suspension.error)
                continue
            self.restarts[name] = self.restarts.get(name, 0) + 1
            self.restarts_total += 1
            ok, replay_error = self._attempt(node)
            if ok:
                continue
            if not self._suspend(node, replay_error or suspension.error):
                self.rts._quarantine(node, replay_error or suspension.error)

    # -- introspection -------------------------------------------------------
    @property
    def suspended(self) -> List[str]:
        return sorted(self._suspended)

    def report(self) -> dict:
        """The recovery ledger (not part of the replay-verified snapshot)."""
        return {
            "checkpoint_interval": self.checkpoint_interval,
            "max_restarts": self.max_restarts,
            "checkpoints_taken": self.checkpoints_taken,
            "checkpoint_nodes": len(self.checkpoints),
            "checkpoint_bytes": self.checkpoint_bytes,
            "restarts": dict(sorted(self.restarts.items())),
            "restarts_total": self.restarts_total,
            "replayed_items": self.replayed_items,
            "suppressed_rows": self.suppressed_rows,
            "suppressed_punctuations": self.suppressed_punctuations,
            "retries_exhausted": self.retries_exhausted,
            "suspended": self.suspended,
            "journal_len": self.journal_len,
        }
