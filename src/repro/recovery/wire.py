"""Versioned, checksummed snapshot wire format (DESIGN section 11).

Operator state is a tree of Python primitives -- ints (including
arbitrary-precision RNG words), floats (including the ``-inf`` join
low-water marks), strings, bytes (TCP payload chunks), tuples used both
as rows and as dict keys, lists, and dicts.  ``json`` cannot carry
bytes or tuple keys and ``pickle`` ties the format to interpreter
internals, so snapshots use a small tagged binary encoding of exactly
those types:

* floats travel as their IEEE-754 bits (``struct '>d'``), never as a
  decimal rendering, so a restore reproduces bit-identical state;
* ints are length-prefixed decimal text (arbitrary precision);
* dicts are (key, value) pair lists in insertion order, which keeps
  tuple keys and makes the bytes deterministic for a deterministic
  builder.

Framing::

    b"GSCK" | version:u16 | payload | checksum:u32

The checksum is :func:`repro.determinism.stable_hash` over the payload
bytes -- the same process-stable digest the replay contract is built
on.  A version mismatch raises :class:`SnapshotVersionError` (a stale
checkpoint must be rejected, not half-decoded into garbage state); any
framing or checksum failure raises :class:`SnapshotCorruptError`.
"""

from __future__ import annotations

import struct
from typing import Any, List, Tuple

from repro.determinism import stable_hash

MAGIC = b"GSCK"
#: bump when the payload encoding or any operator's state layout changes
#: (v2: sparse LFTA table slots, elided untouched shed-RNG state)
SNAPSHOT_VERSION = 2

_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")


class SnapshotError(Exception):
    """Base class for snapshot encode/decode failures."""


class SnapshotVersionError(SnapshotError):
    """The snapshot was written by a different format version."""


class SnapshotCorruptError(SnapshotError):
    """The snapshot bytes fail framing or checksum validation."""


def _encode_value(value: Any, out: List[bytes]) -> None:
    kind = type(value)
    if value is None:
        out.append(b"N")
    elif kind is bool:
        out.append(b"T" if value else b"F")
    elif kind is int:
        text = b"%d" % value
        out.append(b"i")
        out.append(_U32.pack(len(text)))
        out.append(text)
    elif kind is float:
        out.append(b"f")
        out.append(_F64.pack(value))
    elif kind is str:
        data = value.encode("utf-8")
        out.append(b"s")
        out.append(_U32.pack(len(data)))
        out.append(data)
    elif kind is bytes:
        out.append(b"b")
        out.append(_U32.pack(len(value)))
        out.append(value)
    elif kind is tuple:
        out.append(b"t")
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode_value(item, out)
    elif kind is list:
        out.append(b"l")
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode_value(item, out)
    elif kind is dict:
        out.append(b"d")
        out.append(_U32.pack(len(value)))
        for key, item in value.items():
            _encode_value(key, out)
            _encode_value(item, out)
    else:
        raise SnapshotError(
            f"cannot snapshot value of type {kind.__name__}: {value!r}")


def _decode_value(blob: bytes, offset: int) -> Tuple[Any, int]:
    try:
        tag = blob[offset:offset + 1]
        offset += 1
        if tag == b"N":
            return None, offset
        if tag == b"T":
            return True, offset
        if tag == b"F":
            return False, offset
        if tag == b"i":
            (length,) = _U32.unpack_from(blob, offset)
            offset += 4
            text = blob[offset:offset + length]
            if len(text) != length:
                raise SnapshotCorruptError("truncated int payload")
            return int(text), offset + length
        if tag == b"f":
            (value,) = _F64.unpack_from(blob, offset)
            return value, offset + 8
        if tag == b"s":
            (length,) = _U32.unpack_from(blob, offset)
            offset += 4
            data = blob[offset:offset + length]
            if len(data) != length:
                raise SnapshotCorruptError("truncated str payload")
            return data.decode("utf-8"), offset + length
        if tag == b"b":
            (length,) = _U32.unpack_from(blob, offset)
            offset += 4
            data = blob[offset:offset + length]
            if len(data) != length:
                raise SnapshotCorruptError("truncated bytes payload")
            return data, offset + length
        if tag in (b"t", b"l"):
            (count,) = _U32.unpack_from(blob, offset)
            offset += 4
            items = []
            for _ in range(count):
                item, offset = _decode_value(blob, offset)
                items.append(item)
            return (tuple(items) if tag == b"t" else items), offset
        if tag == b"d":
            (count,) = _U32.unpack_from(blob, offset)
            offset += 4
            result = {}
            for _ in range(count):
                key, offset = _decode_value(blob, offset)
                value, offset = _decode_value(blob, offset)
                result[key] = value
            return result, offset
    except struct.error as error:
        raise SnapshotCorruptError(f"truncated snapshot payload: {error}")
    raise SnapshotCorruptError(f"unknown snapshot tag {tag!r} at {offset - 1}")


def _checksum(payload: bytes) -> int:
    return stable_hash(payload) & 0xFFFFFFFF


def encode_snapshot(state: Any) -> bytes:
    """Frame ``state`` (a tree of snapshot primitives) as snapshot bytes."""
    parts: List[bytes] = []
    _encode_value(state, parts)
    payload = b"".join(parts)
    return (MAGIC + _U16.pack(SNAPSHOT_VERSION) + payload
            + _U32.pack(_checksum(payload)))


def decode_snapshot(blob: bytes) -> Any:
    """Validate framing, version, and checksum; return the state tree."""
    if len(blob) < len(MAGIC) + 2 + 4:
        raise SnapshotCorruptError(
            f"snapshot too short ({len(blob)} bytes)")
    if blob[:4] != MAGIC:
        raise SnapshotCorruptError(
            f"bad snapshot magic {blob[:4]!r} (expected {MAGIC!r})")
    (version,) = _U16.unpack_from(blob, 4)
    if version != SNAPSHOT_VERSION:
        raise SnapshotVersionError(
            f"snapshot version {version} is not supported "
            f"(this build reads version {SNAPSHOT_VERSION}); "
            "discard the checkpoint and start a fresh one")
    payload = blob[6:-4]
    (expected,) = _U32.unpack_from(blob, len(blob) - 4)
    if _checksum(payload) != expected:
        raise SnapshotCorruptError(
            "snapshot checksum mismatch (corrupt or partially "
            "written checkpoint)")
    state, offset = _decode_value(payload, 0)
    if offset != len(payload):
        raise SnapshotCorruptError(
            f"{len(payload) - offset} trailing bytes after snapshot payload")
    return state
