"""E9 (ablation) -- what the deployment's second CPU buys.

The Section 4 experiment ran on a single 733 MHz processor; the
Section 5 deployment headline ("1.2 million packets per second") ran on
an "inexpensive dual 2.4 GHz CPU server".  This ablation asks how much
of the gap between option 2 (libpcap, no query) and option 3 (Gigascope
in the host) a second CPU closes: with the HFTA process scheduled on
CPU 2, per-tuple query work no longer competes with the receive path,
so the host-LFTA knee should move up to (essentially) the libpcap knee
-- the remaining wall is interrupt livelock, which no amount of
processing offload fixes.
"""

import pytest

from repro.sim.capture import CaptureConfig, CaptureSimulation, find_loss_knee
from repro.workloads.generators import section4_stream

DURATION = 0.4
THRESHOLD = 0.02


def knee(config, pools, qualifier, dual_cpu=False):
    def loss(mbps):
        stream = section4_stream(background_mbps=max(0.0, mbps - 60.0),
                                 duration_s=DURATION, pools=pools)
        sim = CaptureSimulation(config, qualifier=qualifier,
                                dual_cpu=dual_cpu)
        return sim.run(stream).loss_rate

    return find_loss_knee(loss, low=80.0, high=900.0, threshold=THRESHOLD,
                          tolerance=25.0)


def test_e9_second_cpu_closes_the_gap(section4_pools, port80_qualifier):
    libpcap = knee(CaptureConfig.LIBPCAP_DISCARD, section4_pools,
                   port80_qualifier)
    single = knee(CaptureConfig.GIGASCOPE_HOST, section4_pools,
                  port80_qualifier, dual_cpu=False)
    dual = knee(CaptureConfig.GIGASCOPE_HOST, section4_pools,
                port80_qualifier, dual_cpu=True)

    print("\nE9 2%-loss knees (Mbit/s)")
    print(f"  libpcap (no query)          {libpcap:>6.0f}")
    print(f"  gigascope host, 1 CPU       {single:>6.0f}")
    print(f"  gigascope host, 2 CPUs      {dual:>6.0f}")

    # The second CPU recovers (most of) the query-processing cost ...
    assert dual > single
    # ... bringing Gigascope within a few percent of bare libpcap ...
    assert dual > libpcap * 0.93
    # ... but not beyond it: interrupts, not processing, are the wall.
    assert dual < libpcap * 1.1


def test_e9_offloaded_tuples_survive(section4_pools, port80_qualifier):
    """At a rate the single CPU cannot sustain, the dual-CPU setup
    both keeps packets and keeps (almost) every offloaded tuple."""
    stream = section4_stream(background_mbps=400.0, duration_s=DURATION,
                             pools=section4_pools)
    result = CaptureSimulation(CaptureConfig.GIGASCOPE_HOST,
                               qualifier=port80_qualifier,
                               dual_cpu=True).run(stream)
    assert result.loss_rate <= THRESHOLD
    assert result.hfta_dropped_tuples < result.qualifying_packets * 0.01
