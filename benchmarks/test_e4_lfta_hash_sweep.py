"""E4 -- the LFTA's small direct-mapped hash table vs temporal locality.

"An LFTA can perform aggregation, but it uses a small direct-mapped
hash table.  Hash table collisions result in a tuple computed from the
ejected group being written to the output stream.  Because of temporal
locality, aggregation even with a small hash table is effective in
early data reduction." (Section 3)

The ablation the paper asserts qualitatively: sweep the table size
against flow-popularity skew (Zipf alpha).  With a skewed workload a
small table already absorbs most updates; with a uniform workload the
same table thrashes.  Correctness never depends on the size -- the HFTA
recombines partials -- only the early-reduction factor does.
"""

import pytest

from repro import Gigascope
from repro.workloads.flows import ZipfFlowWorkload

QUERY = """
    DEFINE query_name flows;
    Select tb, srcIP, srcPort, count(*), sum(len)
    From tcp
    Group by time/30 as tb, srcIP, srcPort
"""

TABLE_SIZES = [64, 256, 1024, 4096]
ALPHAS = [0.0, 0.8, 1.2]
PACKETS = 30_000


def run(table_size, packets):
    gs = Gigascope(lfta_table_size=table_size)
    gs.add_query(QUERY)
    sub = gs.subscribe("flows")
    gs.start()
    gs.feed(packets)
    gs.flush()
    rows = sub.poll()
    stats = gs.stats()
    lfta_name = next(name for name in stats if name.startswith("_fta_"))
    return rows, stats[lfta_name]


@pytest.fixture(scope="module")
def streams():
    return {
        alpha: list(ZipfFlowWorkload(num_flows=8000, alpha=alpha,
                                     seed=13).packets(PACKETS, pps=2000.0))
        for alpha in ALPHAS
    }


def test_e4_reduction_vs_table_size_and_skew(streams):
    print("\nE4 LFTA partials emitted (lower = better early reduction), "
          f"{PACKETS} packets, 8000 flows")
    print(f"{'table size':>10}" + "".join(f"  alpha={a:<6}" for a in ALPHAS))
    table = {}
    reference = {}
    for size in TABLE_SIZES:
        row = []
        for alpha in ALPHAS:
            rows, lfta_stats = run(size, streams[alpha])
            aggregated = {}
            for tb, src, sport, cnt, total in rows:
                key = (tb, src, sport)
                assert key not in aggregated  # HFTA emits each group once
                aggregated[key] = (cnt, total)
            if alpha not in reference:
                reference[alpha] = aggregated
            # Correctness is independent of the table size.
            assert aggregated == reference[alpha]
            row.append(lfta_stats["tuples_out"])
        table[size] = row
        print(f"{size:>10}" + "".join(f"{v:>13}" for v in row))

    for column, alpha in enumerate(ALPHAS):
        # Bigger tables always reduce at least as well (fewer partials).
        per_size = [table[size][column] for size in TABLE_SIZES]
        assert per_size == sorted(per_size, reverse=True)
    # Temporal locality is what makes small tables work: with the skewed
    # workload the small table emits far fewer partials than with the
    # uniform one.
    small = TABLE_SIZES[0]
    assert table[small][ALPHAS.index(1.2)] < table[small][ALPHAS.index(0.0)] * 0.8


def test_e4_collision_rate_drops_with_skew(streams):
    from repro.gsql.codegen import ExprCompiler
    from repro.gsql.functions import builtin_functions
    from repro.gsql.parser import parse_query
    from repro.gsql.planner import plan_query
    from repro.gsql.schema import builtin_registry
    from repro.gsql.semantic import analyze
    from repro.operators.lfta import LftaNode

    functions = builtin_functions()
    rates = {}
    for alpha in (0.0, 1.2):
        analyzed = analyze(parse_query(QUERY), builtin_registry(), functions)
        plan = plan_query(analyzed, functions)
        lfta = LftaNode(plan.lftas[0], analyzed,
                        ExprCompiler(analyzed, functions), table_size=256)
        for packet in streams[alpha]:
            lfta.accept_packet(packet)
        rates[alpha] = lfta.table.collision_rate
    print(f"\nE4 collision rate at 256 slots: uniform={rates[0.0]:.3f}, "
          f"zipf(1.2)={rates[1.2]:.3f}")
    assert rates[1.2] < rates[0.0]
