"""E8 -- join windows bound operator state (Sections 2.1-2.2).

"The join predicate must contain a constraint on an ordered attribute
from each table which can be used to define a join window" -- that
window is what makes the blocking join a stream operator: buffered
state is bounded by the window width times the rate, independent of
stream length.

We sweep the window width and measure peak buffered tuples (output
volume grows quadratically with the window, so the sweep counts emitted
pairs rather than collecting them), and check the ordering-imputation
claim: an equality join emits monotone output, a band join banded
output.
"""

import time

import pytest

from repro import Gigascope
from tests.conftest import tcp_packet

RATE_PPS = 100
DURATION_S = 40.0


def run_join(width, rate_pps=RATE_PPS, duration_s=DURATION_S,
             collect=False):
    gs = Gigascope(heartbeat_interval=1.0)
    if width == 0:
        where = "B.time = C.time"
    else:
        where = (f"B.time >= C.time - {width} and B.time <= C.time + {width}")
    gs.add_query(f"""
        DEFINE query_name j;
        Select B.time, B.srcIP, C.srcIP
        From eth0.tcp B, eth1.tcp C
        Where {where}
    """)
    sub = gs.subscribe("j") if collect else None
    gs.start()
    node = gs.rts.node("j")
    peak = 0
    count = int(rate_pps * duration_s)
    start = time.perf_counter()
    for i in range(count):
        ts = i / rate_pps
        interface = "eth0" if i % 2 else "eth1"
        gs.feed_packet(tcp_packet(ts=ts, sport=i % 50_000, interface=interface))
        if i % 128 == 0:
            gs.pump()
            peak = max(peak, node.buffered)
    gs.flush()
    elapsed = time.perf_counter() - start
    rows = sub.poll() if collect else None
    return rows, node.pairs_emitted, peak, elapsed, gs


def test_e8_state_scales_with_window():
    print("\nE8 join state vs window width "
          f"({RATE_PPS // 2} pkt/s per side, {DURATION_S:.0f} s)")
    print(f"{'window (s)':>10}{'output pairs':>13}{'peak buffered':>14}"
          f"{'seconds':>9}")
    peaks = {}
    pairs = {}
    for width in (0, 1, 2, 4):
        _, emitted, peak, elapsed, _ = run_join(width)
        peaks[width] = peak
        pairs[width] = emitted
        print(f"{width:>10}{emitted:>13}{peak:>14}{elapsed:>9.2f}")
    # State and output grow with the window but state stays bounded
    # (never the whole stream).
    assert peaks[0] < peaks[2] < peaks[4]
    assert pairs[0] < pairs[1] < pairs[4]
    assert peaks[4] < RATE_PPS * DURATION_S / 4


def test_e8_output_ordering_matches_imputation():
    """Equality join output is monotone; band join output is banded by
    the window width -- the Section 2.1 imputation, observed."""
    rows_eq, _, _, _, gs_eq = run_join(0, rate_pps=100, duration_s=20,
                                       collect=True)
    ordering_eq = gs_eq.schema_of("j").attributes[0].ordering
    times = [r[0] for r in rows_eq]
    assert ordering_eq.is_increasing and ordering_eq.effective_band == 0
    assert times == sorted(times)

    rows_band, _, _, _, gs_band = run_join(2, rate_pps=100, duration_s=20,
                                           collect=True)
    ordering_band = gs_band.schema_of("j").attributes[0].ordering
    assert ordering_band.effective_band == 4  # banded_increasing(2*2)
    times = [r[0] for r in rows_band]
    high = float("-inf")
    for value in times:
        high = max(high, value)
        assert value >= high - 4
    # and the band is real: the output is NOT fully sorted
    assert times != sorted(times)


def test_e8_sorted_join_buys_monotone_with_buffer_space():
    """Section 2.1's algorithm choice, measured: the sorted band join
    produces fully ordered output at the cost of a reorder buffer whose
    peak grows with the window width."""
    from repro import Gigascope
    print("\nE8b sorted band join: reorder buffer vs window width")
    print(f"{'window (s)':>10}{'reorder peak':>13}{'output sorted':>15}")
    peaks = {}
    for width in (1, 2, 4):
        gs = Gigascope(heartbeat_interval=1.0)
        gs.add_query(f"""
            DEFINE {{ query_name j; join_output sorted; }}
            Select B.time, B.srcIP, C.srcIP
            From eth0.tcp B, eth1.tcp C
            Where B.time >= C.time - {width} and B.time <= C.time + {width}
        """)
        sub = gs.subscribe("j")
        gs.start()
        for i in range(2000):
            ts = i / 100.0
            gs.feed_packet(tcp_packet(ts=ts, sport=i % 50_000,
                                      interface="eth0" if i % 2 else "eth1"))
        gs.flush()
        times = [r[0] for r in sub.poll()]
        node = gs.rts.node("j")
        peaks[width] = node.reorder_peak
        print(f"{width:>10}{node.reorder_peak:>13}{str(times == sorted(times)):>15}")
        assert times == sorted(times)
    assert peaks[1] < peaks[4]


def test_e8_benchmark_equality_join(benchmark):
    benchmark.pedantic(
        lambda: run_join(0, rate_pps=100, duration_s=20),
        rounds=2, iterations=1)
