"""E12 -- observability overhead and lineage completeness (extension).

The paper's operators diagnosed seven three-month deployments from
runtime statistics; statistics you cannot afford to leave on are
useless.  E12 quantifies the cost of the unified observability layer
(PR 2) on the E2 headline workload and proves the sampled
tuple-lineage tracer actually follows a packet across the whole
NIC -> LFTA -> channel -> HFTA -> sink split.

Deliverables:

* metrics-enabled throughput within 5% of metrics-disabled (the
  registry samples existing counters lazily; the packet path pays one
  histogram observation per *pump cycle*, not per packet);
* at rate 0.01, at least one sampled packet reconstructs a complete
  span chain ending in a sink;
* ``BENCH_E12.json`` and ``METRICS_E12.prom`` snapshots for CI
  artifacts.
"""

import json
import time
from pathlib import Path

from repro import Gigascope
from repro.nic.nic import Nic
from repro.sinks import JsonlSink, attach_sink
from repro.workloads.generators import http_port80_pool, packet_stream

REPO_ROOT = Path(__file__).resolve().parent.parent
PACKET_COUNT = 20_000
ROUNDS = 5

QUERIES = """
    DEFINE query_name link0;
    Select time, destIP, len From eth0.tcp Where destPort = 80;

    DEFINE query_name watch;
    Select time, destIP From link0 Where len >= 0;

    DEFINE query_name appmon;
    Select tb, count(*), sum(len) From link0 Group by time/10 as tb
"""


def build_engine(metrics=True):
    gs = Gigascope(heartbeat_interval=1.0, metrics=metrics)
    gs.add_queries(QUERIES)
    gs.subscribe("appmon")
    return gs


def make_packets(count=PACKET_COUNT):
    pool = http_port80_pool(seed=1)
    stream = packet_stream(pool, rate_mbps=50.0, duration_s=10.0,
                           interface="eth0", seed=3)
    packets = []
    for packet in stream:
        packets.append(packet)
        if len(packets) >= count:
            break
    return packets


def _time_feed(packets, metrics):
    gs = build_engine(metrics=metrics)
    gs.start()
    start = time.perf_counter()
    gs.feed(packets, pump_every=1024)
    return time.perf_counter() - start


def test_e12_metrics_overhead():
    packets = make_packets()
    _time_feed(packets, True), _time_feed(packets, False)  # warmup
    with_metrics, without = [], []
    for _ in range(ROUNDS):  # interleaved so drift hits both equally
        with_metrics.append(_time_feed(packets, True))
        without.append(_time_feed(packets, False))
    best_on, best_off = min(with_metrics), min(without)
    pps_on = len(packets) / best_on
    pps_off = len(packets) / best_off
    overhead = best_on / best_off - 1.0
    print(f"\nE12 overhead: metrics on {pps_on:,.0f} pps, "
          f"off {pps_off:,.0f} pps -> {overhead:+.2%} overhead")

    (REPO_ROOT / "BENCH_E12.json").write_text(json.dumps({
        "experiment": "E12 observability overhead",
        "packets": len(packets),
        "rounds": ROUNDS,
        "pps_metrics_on": pps_on,
        "pps_metrics_off": pps_off,
        "overhead_fraction": overhead,
    }, indent=2))

    # A metrics snapshot of the instrumented run, for the CI artifact.
    gs = build_engine(metrics=True)
    gs.start()
    gs.feed(packets, pump_every=1024)
    gs.flush()
    (REPO_ROOT / "METRICS_E12.prom").write_text(gs.metrics.to_prometheus())

    assert overhead < 0.05, (
        f"metrics layer costs {overhead:.1%} (> 5%) on the E2 workload")


def test_e12_sampled_trace_reconstructs_full_chain(tmp_path):
    """rate 0.01: at least one packet's span chain runs NIC to sink."""
    gs = build_engine(metrics=True)
    sink_file = open(tmp_path / "watch.jsonl", "w")
    attach_sink(gs, "watch", JsonlSink, sink_file)
    nic = Nic(ring_slots=8192, service_us=0.5)
    gs.observe_nic(nic)
    tracer = gs.enable_tracing(0.01)
    gs.start()
    packets = make_packets(10_000)
    for packet in packets:
        nic.receive(packet, now_us=packet.timestamp * 1e6)
    fed = 0
    for _ts, delivered in nic.take_deliveries():
        gs.feed_packet(delivered)
        fed += 1
        if fed % 1024 == 0:
            gs.pump()
    gs.flush()
    sink_file.close()

    required = ("nic", "feed", "lfta", "emit", "hfta", "sink")
    complete = tracer.complete_chains(required)
    print(f"\nE12 lineage: {tracer.started} traces sampled from "
          f"{len(packets)} packets; {len(complete)} complete "
          f"NIC->...->sink chains")
    assert tracer.started > 0
    assert complete, "no sampled packet produced a complete span chain"
    chain = tracer.stage_chain(complete[0])
    # stages appear in causal order along the chain
    last = -1
    for stage in required:
        position = chain.index(stage)
        assert position > last
        last = position
    # virtual-time timestamps are monotone along the span chain
    times = [event["t"] for event in tracer.spans(complete[0])]
    assert times == sorted(times)
    # and the dump is valid JSON an offline tool can load
    doc = json.loads(tracer.to_json())
    assert str(complete[0]) in doc["traces"]
