"""E17 -- replication cadence vs RPO/RTO, and what steady state costs.

The warm-standby pair (:class:`repro.replication.ReplicatedGigascope`,
DESIGN section 16) trades a per-cadence frame-shipping cost for a
bounded recovery point: crash anywhere and the standby replays only
the packets since the last applied frame.  E17 sweeps the cadence and
records both sides of that trade on the flow-aggregation workload:

* **shipping overhead** -- what replication costs the serving path:
  a primary cutting and encoding frames into a log (no standby
  attached) against a plain engine on the identical trace.  This is
  the production number -- the standby applies frames on its own
  hardware -- and carries the <= 5% acceptance bar at the default
  cadence.  Rounds interleave the plain and replicated arms and take
  per-arm minima so machine drift cannot masquerade as overhead.
* **pair overhead** -- the same ratio for the full in-process pair
  (shipping *plus* the standby's decode/restore), recorded for
  context: it is what the test harness and the ``--standby`` CLI pay.
* **RPO** -- packets and virtual seconds rolled back when the primary
  is killed mid delta-interval (``packet:K``), straight from the
  replication report: tighter cadence, smaller window.
* **RTO** -- the promotion wall time (final drain + skip-gate arming
  + cursor rewind), excluding the replay itself, which is work the
  primary would have done anyway.

Every crash arm also re-asserts the contract that makes the numbers
meaningful: the promoted standby's rows are byte-identical to an
uninterrupted run.  Results land in ``BENCH_E17.json``;
``GS_E17_SMOKE=1`` shrinks the trace and rounds for the CI gate.
"""

import json
import os
import time
from pathlib import Path

from repro import Gigascope
from repro.determinism import derive_seed
from repro.replication import ReplicatedGigascope
from repro.replication.shipper import ReplicationShipper
from repro.workloads.flows import ZipfFlowWorkload

REPO_ROOT = Path(__file__).resolve().parent.parent

SMOKE = os.environ.get("GS_E17_SMOKE") == "1"
PACKET_COUNT = 16_000 if SMOKE else 40_000
ROUNDS = 3 if SMOKE else 5
CADENCES = (0.25, 0.5, 1.0) if SMOKE else (0.25, 0.5, 1.0, 2.0)
DEFAULT_CADENCE = 1.0
OVERHEAD_CEILING = 0.05

QUERY = """
    DEFINE query_name flows;
    Select tb, srcIP, count(*), sum(len)
    From tcp
    Group by time/5 as tb, srcIP
"""


def make_packets():
    workload = ZipfFlowWorkload(num_flows=400, alpha=1.1,
                                seed=derive_seed(7, "workload.zipf"))
    return list(workload.packets(PACKET_COUNT, pps=10_000.0))


def time_plain(packets):
    gs = Gigascope(seed=7, heartbeat_interval=1.0, metrics=False)
    gs.add_query(QUERY)
    sub = gs.subscribe("flows")
    gs.start()
    start = time.perf_counter()
    gs.feed(packets, pump_every=1024)
    gs.flush()
    elapsed = time.perf_counter() - start
    return elapsed, sub.poll()


def time_shipping(packets, cadence):
    """A primary cutting frames into a log, no standby attached."""
    gs = Gigascope(seed=7, heartbeat_interval=1.0, metrics=False)
    gs.add_query(QUERY)
    gs.subscribe("flows")
    log = []
    gs.rts.replicator = ReplicationShipper(gs.rts, cadence, log.append)
    gs.start()
    start = time.perf_counter()
    gs.feed(packets, pump_every=1024)
    gs.flush()
    return time.perf_counter() - start


def time_pair(packets, cadence):
    gs = ReplicatedGigascope(cadence=cadence, seed=7,
                             heartbeat_interval=1.0, metrics=False)
    gs.add_query(QUERY)
    sub = gs.subscribe("flows")
    gs.start()
    start = time.perf_counter()
    gs.feed(packets, pump_every=1024)
    gs.flush()
    return time.perf_counter() - start, sub.poll(), gs.replication_report()


def run_crash(packets, cadence, crash):
    gs = ReplicatedGigascope(cadence=cadence, crash=crash, seed=7,
                             heartbeat_interval=1.0, metrics=False)
    gs.add_query(QUERY)
    sub = gs.subscribe("flows")
    gs.start()
    gs.feed(packets, pump_every=1024)
    gs.flush()
    return sub.poll(), gs.replication_report()


def test_e17_failover():
    packets = make_packets()
    # Off the pump grid, mid delta-interval: the worst-case cut point.
    crash = f"packet:{int(len(packets) * 0.6) + 13}"
    span = packets[-1].timestamp - packets[0].timestamp

    # Interleaved timing rounds: every arm sees the same drift.
    plain_times, ship_times, pair_times = [], {c: [] for c in CADENCES}, \
        {c: [] for c in CADENCES}
    plain_rows, steady = None, {}
    for _ in range(ROUNDS):
        elapsed, plain_rows = time_plain(packets)
        plain_times.append(elapsed)
        for cadence in CADENCES:
            ship_times[cadence].append(time_shipping(packets, cadence))
            elapsed, rows, report = time_pair(packets, cadence)
            pair_times[cadence].append(elapsed)
            assert rows == plain_rows, \
                f"cadence {cadence}: steady-state replication changed output"
            assert not report["promoted"]
            steady[cadence] = report
    plain_s = min(plain_times)

    results = {}
    for cadence in CADENCES:
        crash_rows, failed = run_crash(packets, cadence, crash)
        assert crash_rows == plain_rows, \
            f"cadence {cadence}: promoted standby diverged"
        assert failed["promoted"] and failed["apply_errors"] == 0
        report = steady[cadence]
        results[cadence] = {
            "shipping_overhead": min(ship_times[cadence]) / plain_s - 1.0,
            "pair_overhead": min(pair_times[cadence]) / plain_s - 1.0,
            "frames_full": report["frames_full"],
            "frames_delta": report["frames_delta"],
            "bytes_total": report["bytes_total"],
            "bytes_per_virtual_s": report["bytes_total"] / span,
            "rpo_packets": failed["rpo_packets"],
            "rpo_virtual_s": failed["rpo_virtual_s"],
            "rto_wall_s": failed["promote_wall_s"],
            "replayed_packets": failed["replayed_packets"],
            "suppressed_rows": failed["suppressed_rows"],
        }

    print(f"\nE17 failover ({'smoke' if SMOKE else 'full'} trace, "
          f"{len(packets)} packets over {span:.1f}s virtual, "
          f"crash {crash}): plain {len(packets) / plain_s:,.0f} pps")
    for cadence in CADENCES:
        entry = results[cadence]
        print(f"   cadence {cadence:>4}s: "
              f"shipping {entry['shipping_overhead']:+.1%} / "
              f"pair {entry['pair_overhead']:+.1%} "
              f"({entry['frames_delta']} deltas, "
              f"{entry['bytes_total']:,} B), "
              f"RPO {entry['rpo_packets']} pkts / "
              f"{entry['rpo_virtual_s']:.3f}s, "
              f"RTO {entry['rto_wall_s'] * 1e3:.2f}ms")

    (REPO_ROOT / "BENCH_E17.json").write_text(json.dumps({
        "experiment": "E17 replication cadence vs RPO/RTO",
        "smoke": SMOKE,
        "packets": len(packets),
        "virtual_span_s": span,
        "rounds": ROUNDS,
        "crash": crash,
        "plain_pps": len(packets) / plain_s,
        "default_cadence": DEFAULT_CADENCE,
        "overhead_ceiling": OVERHEAD_CEILING,
        "cadences": {str(c): results[c] for c in CADENCES},
    }, indent=2))

    # The trade must actually trade: a tighter cadence cannot widen
    # the recovery point.
    loosest = results[max(CADENCES)]["rpo_packets"]
    for cadence in CADENCES:
        assert results[cadence]["rpo_packets"] <= loosest, (
            f"cadence {cadence} rolled back more packets "
            f"({results[cadence]['rpo_packets']}) than cadence "
            f"{max(CADENCES)} ({loosest})")

    overhead = results[DEFAULT_CADENCE]["shipping_overhead"]
    assert overhead <= OVERHEAD_CEILING, (
        f"frame shipping at the default cadence costs the primary "
        f"{overhead:.1%} > {OVERHEAD_CEILING:.0%}")
