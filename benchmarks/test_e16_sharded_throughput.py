"""E16 -- sharded scale-out of the E2 headline workload.

The paper's headline rate (1.2 M packets/s, Section 5) came from
generated C; E2 measures what one Python process sustains on the same
query shape.  E16 measures how that number scales when the stream is
hash-partitioned by flow across N forked LFTA workers whose partial
aggregates are merged by an HFTA combine in the parent
(:class:`repro.shard.ShardedGigascope`).

The sweep runs the identical E2 query set and packet trace at 1, 2, and
4 shards and records packets/second, scaling efficiency (speedup / N),
and the merge overhead (the 1-shard sharded run against the in-process
E2 columnar baseline: partition + pipe + combine cost with zero
parallelism to hide it).  Results land in ``BENCH_E16.json``.

The 2x-at-4-shards acceptance floor only means anything with cores to
run on, so it is gated on ``os.cpu_count()``; the merge-identity
contract (sharded rows == single-process rows, byte for byte) is
asserted unconditionally.
"""

import json
import os
import time
from pathlib import Path

from repro import Gigascope
from repro.shard import ShardedGigascope

from benchmarks.test_e2_headline_throughput import make_packets

REPO_ROOT = Path(__file__).resolve().parent.parent

QUERIES = """
    DEFINE query_name link0;
    Select time, destIP, len From eth0.tcp Where destPort = 80;

    DEFINE query_name link1;
    Select time, destIP, len From eth1.tcp Where destPort = 80;

    DEFINE query_name both;
    Merge link0.time : link1.time From link0, link1;

    DEFINE query_name appmon;
    Select tb, count(*), sum(len) From both Group by time/10 as tb
"""

SHARD_SWEEP = (1, 2, 4)
ROUNDS = 3


def run_single(packets):
    elapsed = []
    rows = None
    for _ in range(ROUNDS):
        gs = Gigascope(heartbeat_interval=1.0, metrics=False)
        gs.add_queries(QUERIES)
        sub = gs.subscribe("appmon")
        gs.start()
        start = time.perf_counter()
        gs.feed(packets, pump_every=1024)
        gs.flush()
        elapsed.append(time.perf_counter() - start)
        rows = sub.poll()
    return len(packets) / min(elapsed), rows


def run_sharded(packets, shards):
    elapsed = []
    rows = None
    merge_rows = 0
    for _ in range(ROUNDS):
        gs = ShardedGigascope(shards, heartbeat_interval=1.0, metrics=False)
        gs.add_queries(QUERIES)
        sub = gs.subscribe("appmon")
        gs.start()
        start = time.perf_counter()
        gs.feed(packets, pump_every=1024)
        gs.flush()
        elapsed.append(time.perf_counter() - start)
        rows = sub.poll()
        merge_rows = gs.stats()["merge/appmon"]["tuples_out"]
    return len(packets) / min(elapsed), rows, merge_rows


def test_e16_sharded_throughput():
    packets = make_packets()
    cores = os.cpu_count() or 1

    single_pps, single_rows = run_single(packets)
    results = {}
    for shards in SHARD_SWEEP:
        pps, rows, merge_rows = run_sharded(packets, shards)
        # Byte-identity is the contract that makes the speedup count.
        assert rows == single_rows, f"{shards}-shard output diverged"
        assert merge_rows == len(rows)
        results[shards] = {
            "pps": pps,
            "speedup": pps / single_pps,
            "scaling_efficiency": pps / single_pps / shards,
        }

    merge_overhead = single_pps / results[1]["pps"]
    print(f"\nE16 sharded scale-out ({cores} cores): "
          f"single-process {single_pps:,.0f} pps")
    for shards in SHARD_SWEEP:
        entry = results[shards]
        print(f"   {shards} shard(s): {entry['pps']:,.0f} pps "
              f"({entry['speedup']:.2f}x, "
              f"efficiency {entry['scaling_efficiency']:.2f})")
    print(f"   merge overhead (1-shard vs in-process): "
          f"{merge_overhead:.2f}x")

    (REPO_ROOT / "BENCH_E16.json").write_text(json.dumps({
        "experiment": "E16 sharded scale-out",
        "packets": len(packets),
        "rounds": ROUNDS,
        "cpu_count": cores,
        "single_process_pps": single_pps,
        "shards": {str(s): results[s] for s in SHARD_SWEEP},
        "merge_overhead": merge_overhead,
    }, indent=2))

    # Acceptance floor: 4 shards must double the single-process rate --
    # but only where 4 workers actually get cores (CI runners do; a
    # 1-core dev container cannot parallelize anything).
    if cores >= max(SHARD_SWEEP):
        assert results[4]["pps"] >= 2.0 * single_pps, (
            f"4-shard run only {results[4]['speedup']:.2f}x "
            f"of single-process ({results[4]['pps']:,.0f} vs "
            f"{single_pps:,.0f} pps)")
    else:
        print(f"   ({cores} cores < {max(SHARD_SWEEP)}: "
              "2.0x floor not enforced)")
