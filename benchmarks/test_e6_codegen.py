"""E6 -- code generation vs interpretation (Section 3).

"The GSQL processor is actually a code generator. ... While a code
generation approach results in some loss of flexibility, our
experiences with Daytona have shown that it is capable of producing
the fastest system" and "Gigascope executes as fast as hand-written
analysis code (and often much faster)".

Three executions of the same filter+aggregate query over identical
tuples: (a) generated code (compile()d Python, the analog of the
generated C), (b) the tree-walking interpreter, and (c) hand-written
Python (what an analyst would write without a query system).  Shape to
reproduce: generated >= hand-written > interpreted.
"""

import time

import pytest

from repro.gsql.codegen import ExprCompiler
from repro.gsql.functions import builtin_functions
from repro.gsql.parser import parse_query
from repro.gsql.planner import plan_query
from repro.gsql.schema import builtin_registry
from repro.gsql.semantic import analyze

QUERY = """
    DEFINE query_name q;
    Select tb, count(*), sum(len) From tcp
    Where destPort = 80 and len > 60
    Group by time/60 as tb
"""

ROWS = 200_000


@pytest.fixture(scope="module")
def input_rows():
    registry = builtin_registry()
    tcp = registry.get("tcp")
    width = len(tcp)
    t_slot, p_slot, l_slot = (tcp.index_of("time"), tcp.index_of("destPort"),
                              tcp.index_of("len"))
    rows = []
    for i in range(ROWS):
        row = [0] * width
        row[t_slot] = i // 50
        row[p_slot] = 80 if i % 3 else 443
        row[l_slot] = 40 + (i % 200)
        rows.append(tuple(row))
    return rows


def _compiled_fns(mode):
    functions = builtin_functions()
    analyzed = analyze(parse_query(QUERY), builtin_registry(), functions)
    compiler = ExprCompiler(analyzed, functions, mode=mode)
    predicate = compiler.predicate_fn(analyzed.where_conjuncts, (None, None))
    key_fn = compiler.tuple_fn(analyzed.group_exprs, (None, None))
    return predicate, key_fn


def _run_query(predicate, key_fn, rows, l_slot):
    groups = {}
    for row in rows:
        if not predicate(row):
            continue
        key = key_fn(row)
        entry = groups.get(key)
        if entry is None:
            groups[key] = entry = [0, 0]
        entry[0] += 1
        entry[1] += row[l_slot]
    return groups


def _hand_written(rows, t_slot, p_slot, l_slot):
    """What a network analyst writes by hand for this exact task."""
    groups = {}
    for row in rows:
        if row[p_slot] != 80:
            continue
        length = row[l_slot]
        if length <= 60:
            continue
        key = row[t_slot] // 60
        entry = groups.get(key)
        if entry is None:
            groups[key] = entry = [0, 0]
        entry[0] += 1
        entry[1] += length
    return groups


def _time(fn, repeats=3):
    """Best-of-N timing: resilient to background load on shared hosts."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_e6_codegen_vs_interpreted_vs_handwritten(input_rows):
    registry = builtin_registry()
    tcp = registry.get("tcp")
    t_slot, p_slot, l_slot = (tcp.index_of("time"), tcp.index_of("destPort"),
                              tcp.index_of("len"))

    pred_c, key_c = _compiled_fns("compiled")
    pred_i, key_i = _compiled_fns("interpreted")

    compiled, t_compiled = _time(
        lambda: _run_query(pred_c, key_c, input_rows, l_slot))
    interpreted, t_interp = _time(
        lambda: _run_query(pred_i, key_i, input_rows, l_slot))
    hand, t_hand = _time(
        lambda: _hand_written(input_rows, t_slot, p_slot, l_slot))

    hand_keyed = {(k,): v for k, v in hand.items()}
    assert compiled == interpreted == hand_keyed  # identical answers

    rate = lambda t: ROWS / t / 1e6
    print(f"\nE6 {ROWS} tuples through the port-80 aggregate query")
    print(f"{'execution':<16}{'seconds':>9}{'Mtuples/s':>11}{'vs interp':>10}")
    for name, t in (("generated code", t_compiled),
                    ("interpreted", t_interp),
                    ("hand-written", t_hand)):
        print(f"{name:<16}{t:>9.3f}{rate(t):>11.2f}{t_interp / t:>9.1f}x")

    # The paper's claims, as shape: codegen beats the interpreter by a
    # wide margin and is at least competitive with hand-written code
    # (the 2.5x slack absorbs shared-host timing noise; typical is ~1.9x).
    assert t_compiled < t_interp / 2
    assert t_compiled < t_hand * 2.5


def test_e6_benchmark_compiled(benchmark, input_rows):
    registry = builtin_registry()
    l_slot = registry.get("tcp").index_of("len")
    predicate, key_fn = _compiled_fns("compiled")
    benchmark(lambda: _run_query(predicate, key_fn, input_rows, l_slot))


def test_e6_benchmark_interpreted(benchmark, input_rows):
    registry = builtin_registry()
    l_slot = registry.get("tcp").index_of("len")
    predicate, key_fn = _compiled_fns("interpreted")
    benchmark(lambda: _run_query(predicate, key_fn, input_rows, l_slot))
