"""E3 -- the LFTA/HFTA aggregate split (Section 3).

"The LFTAs are lightweight queries which perform preliminary filtering,
projection, and aggregation.  By linking them into the RTS, these
preliminary queries can be evaluated without additional data transfers,
and greatly reduce the data traffic to the HFTAs."

We run the Section 2.2 per-minute/per-peer aggregation two ways over
identical traffic -- the planner's two-level split (LFTA partial
aggregation) versus a projection-only LFTA feeding a full HFTA
aggregation -- and measure the tuple traffic between the levels and the
wall-clock cost.  The answer must be identical; the traffic must not be.
"""

import pytest

from repro import Gigascope
from repro.workloads.flows import ZipfFlowWorkload

PEERS = "\n".join(f"10.{i}.0.0/16 {7000 + i}" for i in range(256))

SPLIT_QUERY = """
    DEFINE query_name peermin;
    Select peerid, tb, count(*)
    From tcp
    Group by time/60 as tb, getlpmid(srcIP, $peers) as peerid
"""

# Forcing the aggregation up: group by an (artificially) non-LFTA-safe
# expression wrapper is not expressible in GSQL, so instead we compare
# against a projection LFTA + HFTA aggregation produced by marking the
# grouping function HFTA-only in a private function registry.


def run(two_level: bool, packets):
    from repro.gsql.functions import builtin_functions
    functions = builtin_functions()
    if not two_level:
        functions.get("getlpmid").lfta_safe = False  # push aggregation up
    gs = Gigascope(functions=functions)
    gs.add_query(SPLIT_QUERY, params={"peers": PEERS})
    sub = gs.subscribe("peermin")
    gs.start()
    gs.feed(packets)
    gs.flush()
    rows = sorted(sub.poll())
    stats = gs.stats()
    lfta_name = next(name for name in stats if name.startswith("_fta_"))
    return rows, stats[lfta_name]["tuples_out"], stats


@pytest.fixture(scope="module")
def workload_packets():
    workload = ZipfFlowWorkload(num_flows=4000, alpha=1.1, seed=7)
    return list(workload.packets(60_000, pps=500.0))  # 120 s of stream


def test_e3_reduction_table(workload_packets):
    split_rows, split_traffic, split_stats = run(True, workload_packets)
    full_rows, full_traffic, _ = run(False, workload_packets)

    print("\nE3 LFTA->HFTA tuple traffic for the per-minute/per-peer query")
    print(f"{'plan':<28}{'LFTA out':>10}{'reduction':>11}")
    n = len(workload_packets)
    print(f"{'two-level (partial agg)':<28}{split_traffic:>10}"
          f"{n / split_traffic:>10.1f}x")
    print(f"{'projection + HFTA agg':<28}{full_traffic:>10}"
          f"{n / full_traffic:>10.1f}x")

    # Same answer either way -- the split is semantically transparent.
    assert split_rows == full_rows
    # "greatly reduce the data traffic to the HFTAs"
    assert split_traffic * 20 < full_traffic
    assert full_traffic == n  # projection forwards every packet


def test_e3_wallclock(benchmark, workload_packets):
    def run_split():
        return run(True, workload_packets)

    rows, traffic, _ = benchmark.pedantic(run_split, rounds=3, iterations=1)
    assert rows  # produced output
