"""E10 (ablation) -- sampling as "a technique of last resort".

Section 4: "A sufficiently complex query workload will require sampling
and approximation, but it is a technique of last resort."  Section 5
adds the requirement that when sampling is applied "it must be
integrated into the query language under the control of the analyst" --
which is what ``DEFINE sample p`` does.

This ablation quantifies the trade: sweeping the sample rate on a
per-bucket count query, measure (a) the data reduction at the LFTA and
(b) the relative error of the 1/p-scaled estimates against exact
counts.  Shape: reduction is proportional to p; error grows as p
shrinks but stays small for moderate p (the counts are large).
"""

import math

import pytest

from repro import Gigascope
from repro.workloads.generators import http_port80_pool, packet_stream

RATES = [1.0, 0.5, 0.1, 0.02]
DURATION_S = 20.0
BUCKET = 5


@pytest.fixture(scope="module")
def packets():
    pool = http_port80_pool(seed=31)
    return list(packet_stream(pool, rate_mbps=15.0, duration_s=DURATION_S,
                              seed=32))


def run(rate, packets):
    sample = "" if rate >= 1.0 else f"sample {rate};"
    gs = Gigascope()
    gs.add_query(f"""
        DEFINE {{ query_name q; {sample} }}
        Select tb, count(*) From tcp
        Group by time/{BUCKET} as tb
    """)
    sub = gs.subscribe("q")
    gs.start()
    gs.feed(packets)
    gs.flush()
    counts = dict(sub.poll())
    stats = gs.stats()
    lfta = next(s for n, s in stats.items() if "packets_seen" in s)
    kept = lfta["tuples_in"] - lfta.get("sampled_out", 0)
    return counts, kept


def test_e10_sampling_tradeoff(packets):
    exact, _ = run(1.0, packets)
    total_exact = sum(exact.values())

    print(f"\nE10 DEFINE sample p over {len(packets)} packets "
          f"({BUCKET}s buckets)")
    print(f"{'p':>6}{'updates kept':>14}{'scaled estimate':>17}"
          f"{'rel. error':>12}")
    errors = {}
    reductions = {}
    for rate in RATES:
        counts, kept = run(rate, packets)
        scaled_total = sum(counts.values()) / rate
        error = abs(scaled_total - total_exact) / total_exact
        errors[rate] = error
        reductions[rate] = kept
        print(f"{rate:>6}{kept:>14}{scaled_total:>17.0f}{error:>11.2%}")

    # Reduction is proportional to p (within sampling noise).
    assert reductions[0.1] < reductions[0.5] < reductions[1.0]
    assert reductions[0.1] == pytest.approx(reductions[1.0] * 0.1, rel=0.25)
    # Exact at p=1; small error at moderate p; still bounded at p=0.02.
    assert errors[1.0] == 0.0
    assert errors[0.5] < 0.05
    assert errors[0.02] < 0.25
    # Statistical sanity: error at p should be within ~5 sigma of the
    # binomial expectation sqrt((1-p)/(p*N)).
    n = total_exact
    for rate in (0.5, 0.1, 0.02):
        sigma = math.sqrt((1 - rate) / (rate * n))
        assert errors[rate] < 5 * sigma + 1e-9


def test_e10_sampling_preserves_bucket_structure(packets):
    """Sampling thins every bucket, it does not bias which buckets
    exist: the sampled query reports (almost) the same bucket set."""
    exact, _ = run(1.0, packets)
    sampled, _ = run(0.1, packets)
    missing = set(exact) - set(sampled)
    assert len(missing) <= 1  # at most a boundary bucket lost
    for bucket, count in sampled.items():
        assert bucket in exact
        assert count <= exact[bucket]
