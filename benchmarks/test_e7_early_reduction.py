"""E7 -- "Early data reduction is critical for performance, and the
earlier the better" (Section 4's first conclusion).

We fix the workload and the query (the port-80 filter) and move the
*place* where the filter runs: nowhere (everything reaches the HFTA),
in the host LFTA, or on the NIC -- then measure the 2%-loss knee of
each placement under the virtual-time model.  The knee must improve
monotonically as the reduction moves earlier.

This also regenerates the snap-length effect: pushing projection into
the NIC (capturing 128 bytes instead of full frames) cuts the copy
cost for header-only queries.
"""

import pytest

from repro.sim.capture import CaptureConfig, CaptureSimulation, find_loss_knee
from repro.sim.cost_model import CostModel
from repro.workloads.generators import section4_stream

DURATION = 0.4
THRESHOLD = 0.02


def knee_for(config, pools, qualifier, costs=None):
    def loss(mbps):
        stream = section4_stream(background_mbps=max(0.0, mbps - 60.0),
                                 duration_s=DURATION, pools=pools)
        sim = CaptureSimulation(config, costs=costs, qualifier=qualifier)
        return sim.run(stream).loss_rate

    return find_loss_knee(loss, low=80.0, high=900.0, threshold=THRESHOLD,
                          tolerance=25.0)


def test_e7_reduction_stage_sweep(section4_pools, port80_qualifier):
    """Reduction stage: none -> host LFTA -> NIC, same query."""
    # "no reduction": every packet is processed like a qualifying one
    # (the HFTA sees everything; regex over every payload).
    def no_reduction_qualifier(packet):
        value = port80_qualifier(packet)
        return value if value is not None else packet.caplen

    knees = {
        "no early reduction": knee_for(CaptureConfig.GIGASCOPE_HOST,
                                       section4_pools, no_reduction_qualifier),
        "LFTA in host": knee_for(CaptureConfig.GIGASCOPE_HOST,
                                 section4_pools, port80_qualifier),
        "LFTA on NIC": knee_for(CaptureConfig.GIGASCOPE_NIC,
                                section4_pools, port80_qualifier),
    }
    print("\nE7 2%-loss knee by reduction stage (Mbit/s)")
    for stage, knee in knees.items():
        print(f"  {stage:<22}{knee:>8.0f}")
    ordered = list(knees.values())
    assert ordered[0] < ordered[1] < ordered[2]


def test_e7_snaplen_effect(section4_pools, port80_qualifier):
    """A header-only query lets the NIC snap captures to 128 bytes,
    halving (or better) the host copy cost per full-size packet."""
    base = CostModel()
    # Model the snap: copies cost as if every capture were <= 128 bytes.
    # (caplen-based; we emulate by scaling the per-byte copy cost by the
    # mean truncation ratio of the Section 4 mix, ~128/430.)
    snap = CostModel(copy_per_byte_us=base.copy_per_byte_us * 128 / 430)

    full_knee = knee_for(CaptureConfig.LIBPCAP_DISCARD, section4_pools,
                         port80_qualifier, costs=base)
    snap_knee = knee_for(CaptureConfig.LIBPCAP_DISCARD, section4_pools,
                         port80_qualifier, costs=snap)
    print(f"\nE7 snaplen: full-capture knee {full_knee:.0f} Mbit/s, "
          f"128-byte snap knee {snap_knee:.0f} Mbit/s")
    assert snap_knee > full_knee


def test_e7_interrupt_livelock_is_the_wall(section4_pools, port80_qualifier):
    """Once interrupts saturate, faster processing cannot help: cutting
    the per-packet processing cost to zero barely moves the host knee,
    while cutting the interrupt cost moves it a lot."""
    base = CostModel()
    free_processing = CostModel(libpcap_read_us=0.0, lfta_filter_us=0.0,
                                copy_per_byte_us=0.0)
    cheap_interrupts = CostModel(interrupt_us=base.interrupt_us / 2)

    knee_base = knee_for(CaptureConfig.LIBPCAP_DISCARD, section4_pools,
                         port80_qualifier, costs=base)
    knee_free = knee_for(CaptureConfig.LIBPCAP_DISCARD, section4_pools,
                         port80_qualifier, costs=free_processing)
    knee_cheap_int = knee_for(CaptureConfig.LIBPCAP_DISCARD, section4_pools,
                              port80_qualifier, costs=cheap_interrupts)
    print(f"\nE7 livelock: base {knee_base:.0f}, free processing "
          f"{knee_free:.0f}, half-cost interrupts {knee_cheap_int:.0f} Mbit/s")
    assert knee_free - knee_base < (knee_cheap_int - knee_base) / 2
    assert knee_cheap_int > knee_base * 1.4
