"""E2 -- the Section 5 deployment claim: sustained packets/second.

"At peak periods, Gigascope processes 1.2 million packets per second
using an inexpensive dual 2.4 GHz CPU server" -- the headline of the
largest deployment: application-protocol monitoring over two Gigabit
Ethernet links (two interfaces, merged, then aggregated).

We measure what *this* reproduction sustains on the same query shape
(real wall-clock, pytest-benchmark).  Pure Python will not reach 1.2 M
packets/s; the deliverable is the measured number and the efficiency
structure: the LFTA touches every packet, everything downstream sees
only reduced data.
"""

import pytest

from repro import Gigascope
from repro.workloads.generators import http_port80_pool, merge_streams, packet_stream

PAPER_PPS = 1_200_000


def build_engine():
    gs = Gigascope(heartbeat_interval=1.0)
    gs.add_queries("""
        DEFINE query_name link0;
        Select time, destIP, len From eth0.tcp Where destPort = 80;

        DEFINE query_name link1;
        Select time, destIP, len From eth1.tcp Where destPort = 80;

        DEFINE query_name both;
        Merge link0.time : link1.time From link0, link1;

        DEFINE query_name appmon;
        Select tb, count(*), sum(len) From both Group by time/10 as tb
    """)
    gs.subscribe("appmon")
    gs.start()
    return gs


def make_packets(count=40_000):
    pool0 = http_port80_pool(seed=1)
    pool1 = http_port80_pool(seed=2)
    # rate chosen so `count` packets span a few heartbeat intervals
    a = packet_stream(pool0, rate_mbps=25.0, duration_s=10.0,
                      interface="eth0", seed=3)
    b = packet_stream(pool1, rate_mbps=25.0, duration_s=10.0,
                      interface="eth1", seed=4)
    packets = []
    for packet in merge_streams(a, b):
        packets.append(packet)
        if len(packets) >= count:
            break
    return packets


def test_e2_throughput(benchmark):
    import time

    packets = make_packets()
    elapsed = []

    def run():
        gs = build_engine()
        start = time.perf_counter()
        gs.feed(packets, pump_every=1024)
        elapsed.append(time.perf_counter() - start)
        return gs

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    pps = len(packets) / min(elapsed)
    print(f"\nE2 headline: {pps:,.0f} packets/s sustained "
          f"(paper: {PAPER_PPS:,} on a 2003 dual 2.4 GHz server)")
    print(f"   slowdown vs paper: {PAPER_PPS / pps:,.0f}x "
          "(pure Python vs generated C linked into the RTS)")
    # Floor so regressions are caught; any working build exceeds this.
    assert pps > 10_000


def test_e2_reduction_structure():
    """The efficiency claim behind the number: per-packet work happens
    once, in the LFTA; the merge and aggregation see only reduced data."""
    gs = build_engine()
    packets = make_packets(20_000)
    gs.feed(packets)
    gs.flush()
    stats = gs.stats()
    lfta_in = sum(s["tuples_in"] for name, s in stats.items()
                  if name.startswith("link"))
    merge_in = stats["both"]["tuples_in"]
    agg_out = stats["appmon"]["tuples_out"]
    print(f"\nE2 reduction: {len(packets)} packets -> {lfta_in} LFTA tuples "
          f"-> {merge_in} merged -> {agg_out} result rows")
    assert agg_out < merge_in <= lfta_in <= len(packets)
    assert agg_out <= 20  # ~10 s of stream in 10 s buckets
