"""E2 -- the Section 5 deployment claim: sustained packets/second.

"At peak periods, Gigascope processes 1.2 million packets per second
using an inexpensive dual 2.4 GHz CPU server" -- the headline of the
largest deployment: application-protocol monitoring over two Gigabit
Ethernet links (two interfaces, merged, then aggregated).

We measure what *this* reproduction sustains on the same query shape
(real wall-clock, pytest-benchmark).  Pure Python will not reach 1.2 M
packets/s; the deliverable is the measured number and the efficiency
structure: the LFTA touches every packet, everything downstream sees
only reduced data.
"""

import json
import time
from pathlib import Path

import pytest

from repro import Gigascope
from repro.core.stream_manager import DEFAULT_BATCH_SIZE
from repro.workloads.generators import http_port80_pool, merge_streams, packet_stream

REPO_ROOT = Path(__file__).resolve().parent.parent

PAPER_PPS = 1_200_000

#: Scalar throughput at the commit before the batched data path landed
#: (reference container); the batched headline is measured against it.
PRE_BATCH_BASELINE_PPS = 38_527


def build_engine(batch_size=None):
    gs = Gigascope(heartbeat_interval=1.0, batch_size=batch_size)
    gs.add_queries("""
        DEFINE query_name link0;
        Select time, destIP, len From eth0.tcp Where destPort = 80;

        DEFINE query_name link1;
        Select time, destIP, len From eth1.tcp Where destPort = 80;

        DEFINE query_name both;
        Merge link0.time : link1.time From link0, link1;

        DEFINE query_name appmon;
        Select tb, count(*), sum(len) From both Group by time/10 as tb
    """)
    gs.subscribe("appmon")
    gs.start()
    return gs


def make_packets(count=40_000):
    pool0 = http_port80_pool(seed=1)
    pool1 = http_port80_pool(seed=2)
    # rate chosen so `count` packets span a few heartbeat intervals
    a = packet_stream(pool0, rate_mbps=25.0, duration_s=10.0,
                      interface="eth0", seed=3)
    b = packet_stream(pool1, rate_mbps=25.0, duration_s=10.0,
                      interface="eth1", seed=4)
    packets = []
    for packet in merge_streams(a, b):
        packets.append(packet)
        if len(packets) >= count:
            break
    return packets


ROUNDS = 3


def test_e2_throughput(benchmark):
    packets = make_packets()
    elapsed = []

    def run():
        gs = build_engine(batch_size=DEFAULT_BATCH_SIZE)
        start = time.perf_counter()
        gs.feed(packets, pump_every=1024)
        elapsed.append(time.perf_counter() - start)
        return gs

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=1)
    pps = len(packets) / min(elapsed)

    # The same workload down the scalar path (batch_size=1), for the
    # before/after record in BENCH_E2.json.
    scalar_elapsed = []
    for _ in range(ROUNDS):
        gs = build_engine(batch_size=1)
        start = time.perf_counter()
        gs.feed(packets, pump_every=1024)
        scalar_elapsed.append(time.perf_counter() - start)
    scalar_pps = len(packets) / min(scalar_elapsed)

    print(f"\nE2 headline: {pps:,.0f} packets/s sustained "
          f"(paper: {PAPER_PPS:,} on a 2003 dual 2.4 GHz server)")
    print(f"   scalar path: {scalar_pps:,.0f} pps; pre-batching baseline "
          f"{PRE_BATCH_BASELINE_PPS:,} pps "
          f"-> {pps / PRE_BATCH_BASELINE_PPS:.2f}x")
    print(f"   slowdown vs paper: {PAPER_PPS / pps:,.0f}x "
          "(pure Python vs generated C linked into the RTS)")

    (REPO_ROOT / "BENCH_E2.json").write_text(json.dumps({
        "experiment": "E2 headline throughput",
        "packets": len(packets),
        "rounds": ROUNDS,
        "batch_size": DEFAULT_BATCH_SIZE,
        "pps": pps,
        "scalar_pps": scalar_pps,
        "pre_batch_baseline_pps": PRE_BATCH_BASELINE_PPS,
        "speedup_vs_scalar": pps / scalar_pps,
        "speedup_vs_pre_batch_baseline": pps / PRE_BATCH_BASELINE_PPS,
    }, indent=2))

    # Floor so regressions are caught; with columnar block execution the
    # batched path clears this on any machine that runs the suite at all.
    # (CI additionally enforces 80% of the committed BENCH_E2.json.)
    assert pps > 40_000


def test_e2_reduction_structure():
    """The efficiency claim behind the number: per-packet work happens
    once, in the LFTA; the merge and aggregation see only reduced data."""
    gs = build_engine()
    packets = make_packets(20_000)
    gs.feed(packets)
    gs.flush()
    stats = gs.stats()
    lfta_in = sum(s["tuples_in"] for name, s in stats.items()
                  if name.startswith("link"))
    merge_in = stats["both"]["tuples_in"]
    agg_out = stats["appmon"]["tuples_out"]
    print(f"\nE2 reduction: {len(packets)} packets -> {lfta_in} LFTA tuples "
          f"-> {merge_in} merged -> {agg_out} result rows")
    assert agg_out < merge_in <= lfta_in <= len(packets)
    assert agg_out <= 20  # ~10 s of stream in 10 s buckets
