"""E13 (new) -- fault injection: loss vs. accuracy, and containment.

Gigascope's operational setting (taps on live OC48 links, unattended
collection boxes) means faults are routine: cards go blind, buffers
squeeze, one bad operator throws.  The paper's answer is accounting --
"we know what we lost" -- rather than pretending losses don't happen.
This experiment measures that claim with the seeded fault injectors of
``repro.faults``:

1. Loss vs. accuracy: a per-second COUNT/SUM rollup under ring-loss
   bursts of increasing drop probability.  The headline property is not
   that the estimate stays perfect (it can't -- the card never saw the
   packets) but that the deficit is *fully explained by the ledger*:
   ground truth minus the observed count equals the injector's drop
   count exactly, at every severity.

2. Containment: an injected operator exception quarantines only the
   failing query; a sibling sharing the same packet stream produces
   byte-identical results to a fault-free run, and the ledger names the
   quarantined node.

3. Replayability: a faulty run is as deterministic as a healthy one --
   same seed, same fault spec, same rows and same ledger.
"""

import pytest

from repro import Gigascope
from repro.faults import OperatorFault, RingLossBurst
from tests.conftest import tcp_packet

N_PACKETS = 8000
PPS = 1000.0  # 8 simulated seconds of traffic
ROLLUP = """
    DEFINE query_name rollup;
    Select tb, count(*), sum(len) From tcp Group by time/1 as tb
"""
CANARY = """
    DEFINE query_name canary;
    Select tb, count(*) From tcp Group by time/1 as tb
"""


@pytest.fixture(scope="module")
def packets():
    return [tcp_packet(ts=i / PPS, payload=b"x" * 100)
            for i in range(N_PACKETS)]


def run(packets, faults=(), seed=0):
    gs = Gigascope(seed=seed)
    gs.add_queries(ROLLUP + ";" + CANARY)
    rollup = gs.subscribe("rollup")
    canary = gs.subscribe("canary")
    gs.start()
    armed = gs.inject_faults(faults)
    gs.feed(packets)
    gs.flush()
    return {
        "rollup": rollup.poll(),
        "canary": canary.poll(),
        "armed": armed,
        "report": gs.overload_report(),
        "stats": gs.stats(),
    }


def observed_count(rows):
    return sum(row[1] for row in rows)


def test_e13_loss_is_fully_accounted(packets):
    clean = run(packets)
    true_count = observed_count(clean["rollup"])
    assert true_count == N_PACKETS

    print(f"\nE13 ring-loss bursts over {N_PACKETS} packets "
          f"(burst window [2s, 4s))")
    print(f"{'drop prob':>10}{'dropped':>9}{'count err':>11}"
          f"{'ledger explains':>17}")
    previous_dropped = 0
    for drop_prob in (0.25, 0.5, 1.0):
        burst = RingLossBurst(at=2.0, duration=2.0, drop_prob=drop_prob,
                              seed=7)
        result = run(packets, faults=[burst])
        count = observed_count(result["rollup"])
        deficit = true_count - count
        # The whole point: the error is not mysterious. Every missing
        # row is in the injector's ledger and the RTS's fault counter.
        assert deficit == burst.dropped > 0
        assert result["report"]["fault_dropped"] == burst.dropped
        err = deficit / true_count
        print(f"{drop_prob:>10.2f}{burst.dropped:>9}{err:>10.2%}"
              f"{'yes':>17}")
        # Severity is monotone: a harder burst loses more.
        assert burst.dropped > previous_dropped
        previous_dropped = burst.dropped
        # The burst window covers 1/4 of the stream; realized loss
        # tracks drop_prob * 1/4 within binomial noise.
        assert err == pytest.approx(drop_prob / 4, abs=0.03)


def test_e13_quarantine_contains_the_blast(packets):
    clean = run(packets)
    faulty = run(packets, faults=[OperatorFault("canary", at_tuple=3)])

    # The failing query is quarantined, counted, and named.
    assert "quarantined" in faulty["stats"]["canary"]
    assert list(faulty["report"]["quarantined"]) == ["canary"]
    assert faulty["armed"][0].triggered == 1

    # The sibling never noticed: byte-identical output to the clean run.
    assert faulty["rollup"] == clean["rollup"]
    assert observed_count(faulty["rollup"]) == N_PACKETS


def test_e13_faulty_runs_replay(packets):
    def faulty(seed):
        return run(packets,
                   faults=["ring_burst:at=2,duration=2,drop=0.5"],
                   seed=seed)

    first, second = faulty(seed=42), faulty(seed=42)
    assert first["rollup"] == second["rollup"]
    assert first["report"]["fault_dropped"] == \
        second["report"]["fault_dropped"]
    # A different seed draws a different coin-flip stream.
    other = faulty(seed=43)
    assert other["report"]["fault_dropped"] != \
        first["report"]["fault_dropped"]
