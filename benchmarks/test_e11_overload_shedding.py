"""E11 (new) -- overload control: adaptive shedding vs. raw overflow.

Section 4 frames sampling as the pressure valve when "a sufficiently
complex query workload" outruns the host; Section 5 insists the
approximation be principled.  E10 covered the analyst-controlled
``DEFINE sample p`` knob; this experiment covers the *runtime's* side
of the same trade: an overload controller that watches channel
backpressure and sheds packets in front of the LFTAs, scaling additive
aggregates by 1/rate so COUNT/SUM stay statistically correct.

Setup: a burst of packets through (a) a split query whose bounded
LFTA->HFTA channel is the pressure point and (b) a per-second
COUNT/SUM rollup used to measure estimate accuracy.  Three policies:

  none       -- controller observes but never sheds; the bounded
                channel silently drops tuples (the failure mode).
  static:p   -- fixed-rate gate, the DEFINE-sample analogue.
  adaptive   -- AIMD: halve the keep-rate under pressure, creep back
                up (+0.05) after sustained relief.

Shape: "none" reports large raw channel drops; adaptive keeps the
channel near its capacity watermark, drops (far) less, reports a
nonzero shed fraction, and its 1/rate-corrected COUNT/SUM land within
10% of ground truth.
"""

import pytest

from repro import Gigascope
from tests.conftest import tcp_packet

QUERIES = """
    DEFINE query_name heavy;
    Select time, len From tcp Where str_match_regex(data, '.*');

    DEFINE query_name totals;
    Select tb, count(*), sum(len) From tcp Group by time/1 as tb
"""
N_PACKETS = 8000
CAPACITY = 64


@pytest.fixture(scope="module")
def packets():
    return [tcp_packet(ts=i * 0.001, payload=b"x" * 100)
            for i in range(N_PACKETS)]


def run(policy, packets):
    gs = Gigascope(channel_capacity=CAPACITY)
    gs.add_queries(QUERIES)
    gs.enable_shedding(policy)
    sub = gs.subscribe("totals")
    gs.subscribe("heavy")
    gs.start()
    gs.feed(packets)
    gs.flush()
    rows = sub.poll()
    count = sum(row[1] for row in rows)
    total = sum(row[2] for row in rows)
    return count, total, gs.overload_report()


def test_e11_overload_shedding(packets):
    # Ground truth: the rollup's own channel never overflows (one group
    # per second), so the unshedded "none" run reports exact totals.
    true_count, true_sum, _ = run("none", packets)
    assert true_count == len(packets)

    print(f"\nE11 overload control over {true_count} packets, "
          f"channel capacity {CAPACITY}")
    print(f"{'policy':>12}{'shed frac':>11}{'chan drops':>12}"
          f"{'max depth':>11}{'count err':>11}{'sum err':>10}")
    results = {}
    for policy in ("none", "static:0.25", "adaptive"):
        count, total, report = run(policy, packets)
        depth = max(c["max_depth"] for c in report["channels"].values()
                    if c["capacity"] is not None)
        count_err = abs(count - true_count) / true_count
        sum_err = abs(total - true_sum) / true_sum
        results[policy] = (report, depth, count_err, sum_err)
        print(f"{policy:>12}{report['shed_fraction']:>11.1%}"
              f"{report['channel_dropped']:>12}{depth:>11}"
              f"{count_err:>10.2%}{sum_err:>9.2%}")

    none_report, _, none_count_err, _ = results["none"]
    adaptive_report, adaptive_depth, *_ = results["adaptive"]

    # Without shedding the bounded channel overflows and the loss is
    # only visible as raw drop counters; the rollup itself stays exact
    # (its one-group-per-second channel never fills).
    assert none_report["shed_fraction"] == 0.0
    assert none_report["channel_dropped"] > 0
    assert none_count_err == 0.0

    # Adaptive shedding engages, relieves the channel, and drops less.
    assert adaptive_report["shed_fraction"] > 0.1
    assert adaptive_report["min_shed_rate"] < 1.0
    assert adaptive_report["channel_dropped"] < none_report["channel_dropped"]
    assert adaptive_depth <= CAPACITY + 8  # + in-flight control tokens

    # 1/rate correction holds COUNT and SUM within 10% of ground truth
    # for both the static gate and the adaptive controller.
    for policy in ("static:0.25", "adaptive"):
        _, _, count_err, sum_err = results[policy]
        assert count_err < 0.10
        assert sum_err < 0.10


def test_e11_static_gate_matches_configured_rate(packets):
    """The static policy is the runtime twin of ``DEFINE sample p``:
    the realized shed fraction tracks 1-p within binomial noise."""
    _, _, report = run("static:0.25", packets)
    assert report["shed_fraction"] == pytest.approx(0.75, abs=0.03)
    assert report["shed_rate"] == 0.25
