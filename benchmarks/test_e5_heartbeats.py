"""E5 -- unblocking the merge with ordering-update tokens (Section 3).

"If tcpdest0 produces 100Mbytes of data per second while tcpdest1
produces one tuple per minute, we are likely to overflow the merge
buffers (network traffic is notoriously bursty in this manner). ...
To overcome this problem, we use a mechanism ... of injecting ordering
update tokens into the query stream.  While these tokens are injected
periodically by [7], we are experimenting with an on-demand system
(i.e., if an operator detects that it might be blocked)."

We merge a busy interface with a nearly-silent one, with bounded merge
buffers, under three RTS policies: no tokens at all, periodic tokens,
and on-demand tokens.  Without tokens the merge blocks and overflows;
with either token policy it flows and drops nothing.
"""

import pytest

from repro import Gigascope
from repro.workloads.generators import http_port80_pool, merge_streams, packet_stream

MERGE_CAPACITY = 2000

QUERIES = """
    DEFINE query_name busy;
    Select time, destIP From eth0.tcp;

    DEFINE query_name quiet;
    Select time, destIP From eth1.tcp;

    DEFINE query_name link;
    Merge busy.time : quiet.time From busy, quiet
"""


def run(heartbeat_interval, on_demand):
    gs = Gigascope(heartbeat_interval=heartbeat_interval,
                   on_demand_heartbeats=on_demand,
                   merge_buffer_capacity=MERGE_CAPACITY)
    gs.add_queries(QUERIES)
    sub = gs.subscribe("link")
    gs.start()
    pool = http_port80_pool(seed=4)
    busy = packet_stream(pool, rate_mbps=30.0, duration_s=10.0,
                         interface="eth0", seed=1)
    # "one tuple per minute": within this 10 s run, a single packet at
    # t=0 and then silence -- the quiet side never advances on its own.
    from repro.net.packet import CapturedPacket
    quiet = [CapturedPacket(timestamp=0.0, data=pool.frames[0],
                            interface="eth1")]
    gs.feed(merge_streams(busy, quiet), pump_every=64)
    emitted_before_flush = gs.stats()["link"]["tuples_out"]
    gs.flush()
    rows = sub.poll()
    stats = gs.stats()["link"]
    return {
        "emitted_live": emitted_before_flush,
        "emitted_total": len(rows),
        "dropped": stats["dropped"],
        "ordered": [r[0] for r in rows] == sorted(r[0] for r in rows),
    }


@pytest.fixture(scope="module")
def results():
    return {
        "no tokens": run(heartbeat_interval=None, on_demand=False),
        "periodic (0.5 s)": run(heartbeat_interval=0.5, on_demand=False),
        "on-demand": run(heartbeat_interval=None, on_demand=True),
    }


def test_e5_policy_table(results):
    print("\nE5 asymmetric merge (30 Mbit/s vs ~1 pkt/s), "
          f"buffer capacity {MERGE_CAPACITY} tuples")
    print(f"{'policy':<20}{'live output':>12}{'dropped':>9}{'ordered':>9}")
    for policy, r in results.items():
        print(f"{policy:<20}{r['emitted_live']:>12}{r['dropped']:>9}"
              f"{str(r['ordered']):>9}")

    blocked = results["no tokens"]
    periodic = results["periodic (0.5 s)"]
    on_demand = results["on-demand"]

    # Without tokens the merge blocks on the quiet input: (almost) no
    # live output, and the bounded buffer overflows -- the Section 3
    # failure mode.
    assert blocked["emitted_live"] < periodic["emitted_live"] * 0.1
    assert blocked["dropped"] > 0
    # With periodic tokens it flows and drops nothing.
    assert periodic["dropped"] == 0
    assert periodic["emitted_live"] > periodic["emitted_total"] * 0.8
    # On-demand recovers too: the node notices its buffer depth and asks.
    assert on_demand["dropped"] == 0
    assert on_demand["emitted_live"] > on_demand["emitted_total"] * 0.5
    # All policies preserve output ordering.
    assert all(r["ordered"] for r in results.values())


def test_e5_interval_sweep():
    """Token frequency vs responsiveness: more frequent heartbeats mean
    less data waiting on the quiet input, at the cost of more tokens --
    the trade-off motivating the on-demand design."""
    # Merge on the float `timestamp` so the bound's granularity is the
    # token interval itself (integer seconds would mask the sweep).
    queries = """
        DEFINE query_name busy;
        Select timestamp, destIP From eth0.tcp;

        DEFINE query_name quiet;
        Select timestamp, destIP From eth1.tcp;

        DEFINE query_name link;
        Merge busy.timestamp : quiet.timestamp From busy, quiet
    """
    print("\nE5b heartbeat interval sweep (asymmetric merge)")
    print(f"{'interval (s)':>12}{'tokens sent':>12}{'live output':>12}")
    live = {}
    for interval in (2.0, 0.5, 0.1):
        gs = Gigascope(heartbeat_interval=interval, on_demand_heartbeats=False,
                       merge_buffer_capacity=None)
        gs.add_queries(queries)
        sub = gs.subscribe("link")
        gs.start()
        pool = http_port80_pool(seed=4)
        busy = packet_stream(pool, rate_mbps=10.0, duration_s=5.0,
                             interface="eth0", seed=1)
        gs.feed(busy, pump_every=64)
        live[interval] = gs.stats()["link"]["tuples_out"]
        tokens = gs.rts.heartbeats_sent
        print(f"{interval:>12}{tokens:>12}{live[interval]:>12}")
        gs.flush()
    # Finer intervals release (weakly) more data before end of stream.
    assert live[0.1] >= live[0.5] >= live[2.0]
    assert live[0.1] > 0


def test_e5_heartbeat_cost(results):
    """On-demand exists because periodic tokens are pure overhead when
    streams are balanced; verify tokens are not required for a balanced
    merge to flow."""
    gs = Gigascope(heartbeat_interval=None, on_demand_heartbeats=False,
                   merge_buffer_capacity=MERGE_CAPACITY)
    gs.add_queries(QUERIES)
    sub = gs.subscribe("link")
    gs.start()
    pool = http_port80_pool(seed=4)
    a = packet_stream(pool, rate_mbps=10.0, duration_s=3.0,
                      interface="eth0", seed=1)
    b = packet_stream(pool, rate_mbps=10.0, duration_s=3.0,
                      interface="eth1", seed=2)
    gs.feed(merge_streams(a, b), pump_every=64)
    live = gs.stats()["link"]["tuples_out"]
    gs.flush()
    total = len(sub.poll())
    print(f"\nE5 balanced merge without tokens: {live}/{total} live")
    assert live > total * 0.9
    assert gs.stats()["link"]["dropped"] == 0
