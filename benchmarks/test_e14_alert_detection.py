"""E14 (new) -- alert detection latency and false positives.

The paper motivates Gigascope with intrusion detection on live links;
PR 6 adds the trigger layer that turns detector queries into typed
RAISE/CLEAR alert streams.  This experiment scores that layer against
the labeled attack corpus (:mod:`repro.workloads.scenarios`):

1. **Detection latency** (virtual time): first correct RAISE minus the
   ground-truth attack start, per scenario.  With 5-second epochs the
   first evaluable epoch boundary bounds latency at one epoch.

2. **False positives**: RAISE rows outside the labeled window or naming
   the wrong subject -- plus the flash-crowd negative control, where
   the SYN and scan triggers must stay silent outright.

3. **Detection under adaptive shedding**: a per-packet firehose query
   over a bounded channel pressures the AIMD controller into shedding
   most packets at the LFTA gates; kept packets carry Horvitz-Thompson
   weight 1/rate, so the detectors' COUNT/SUM epochs stay unbiased and
   every attack is still caught (the ISSUE's accuracy-survives claim).

Results land in BENCH_E14.json.  ``GS_E14_SMOKE=1`` shrinks the corpus
for CI.
"""

import json
import os
from pathlib import Path

from repro import Gigascope
from repro.net.packet import int_to_ip
from repro.workloads import scenarios

REPO_ROOT = Path(__file__).resolve().parent.parent
SMOKE = os.environ.get("GS_E14_SMOKE") == "1"
EPOCH = 5.0

SYN_WATCH = """
    DEFINE query_name syn_watch;
    Select tb, destIP, count(*) as syns
    From tcp Where tcpflags & 18 = 2
    Group by time/5 as tb, destIP
"""
SCAN_WATCH = """
    DEFINE query_name scan_watch;
    Select tb, srcIP, count(*) as probes
    From tcp Where tcpflags & 18 = 2
    Group by time/5 as tb, srcIP
"""
AMP_WATCH = """
    DEFINE query_name amp_watch;
    Select tb, destIP, sum(len) as bytes
    From udp Where srcPort = 53
    Group by time/5 as tb, destIP
"""
# The pressure generator for the shedding arm: the regex predicate is
# HFTA-resident, so the LFTA forwards one row per packet through a
# bounded channel and the AIMD loop sees sustained drops.
FIREHOSE = """
    DEFINE query_name firehose;
    Select time, len From tcp Where str_match_regex(data, '.*')
"""

SYN_TRIGGER = ("synflood:on=syn_watch,key=destIP,when=sum(syns) > 400,"
               "epoch=5,raise_for=1,clear_for=2,severity=critical")
SCAN_TRIGGER = ("portscan:on=scan_watch,key=srcIP,when=sum(probes) > 150,"
                "epoch=5,raise_for=1,clear_for=2,severity=warning")
AMP_TRIGGER = ("dnsamp:on=amp_watch,key=destIP,when=sum(bytes) > 500000,"
               "epoch=5,raise_for=1,clear_for=2,severity=critical")


def build_corpus():
    """(scenario, queries, trigger specs, expected trigger name) per kind.

    ``expected`` is None for the negative control: every RAISE it
    produces is a false positive by definition.
    """
    if SMOKE:
        common = dict(duration_s=24.0, start=8.0, background_mbps=3.0)
        return {
            "syn_flood": (scenarios.syn_flood(attack_s=8.0, pps=400.0,
                                              **common),
                          SYN_WATCH, [SYN_TRIGGER], "synflood"),
            "port_scan": (scenarios.port_scan(scan_s=8.0, ports=600,
                                              **common),
                          SCAN_WATCH, [SCAN_TRIGGER], "portscan"),
            "dns_amplification": (scenarios.dns_amplification(
                                      attack_s=8.0, pps=150.0,
                                      reflectors=40, **common),
                                  AMP_WATCH, [AMP_TRIGGER], "dnsamp"),
            "flash_crowd": (scenarios.flash_crowd(crowd_s=8.0, clients=100,
                                                  **common),
                            SYN_WATCH + ";" + SCAN_WATCH,
                            [SYN_TRIGGER, SCAN_TRIGGER], None),
        }
    common = dict(duration_s=50.0, background_mbps=6.0)
    return {
        "syn_flood": (scenarios.syn_flood(pps=800.0, **common),
                      SYN_WATCH, [SYN_TRIGGER], "synflood"),
        "port_scan": (scenarios.port_scan(**common),
                      SCAN_WATCH, [SCAN_TRIGGER], "portscan"),
        "dns_amplification": (scenarios.dns_amplification(pps=300.0,
                                                          **common),
                              AMP_WATCH, [AMP_TRIGGER], "dnsamp"),
        "flash_crowd": (scenarios.flash_crowd(**common),
                        SYN_WATCH + ";" + SCAN_WATCH,
                        [SYN_TRIGGER, SCAN_TRIGGER], None),
    }


def run_arm(scenario, queries, triggers, shed):
    if shed:
        gs = Gigascope(heartbeat_interval=0.5, channel_capacity=64)
        gs.add_queries(queries + ";" + FIREHOSE)
        gs.enable_shedding("adaptive")
    else:
        gs = Gigascope(heartbeat_interval=0.5)
        gs.add_queries(queries)
    gs.enable_alerts(triggers)
    alerts = gs.subscribe("alerts")
    gs.start()
    gs.feed(scenario.packets, pump_every=256)
    gs.flush()
    overload = gs.overload_report()
    return alerts.poll(), overload.get("shed_fraction", 0.0)


def score(rows, trigger_name, scenario):
    """Latency + false positives for one trigger against ground truth."""
    raises = [row for row in rows
              if row[3] == b"RAISE" and row[2].decode() == trigger_name]
    subject = int_to_ip(scenario.subject_ip).encode("ascii")
    lo, hi = scenario.window
    correct = [row for row in raises
               if row[5] == subject and lo <= row[0] <= hi + 2 * EPOCH]
    return {
        "raises": len(raises),
        "detected": bool(correct),
        "detection_latency_s": (correct[0][0] - lo) if correct else None,
        "false_positives": len(raises) - len(correct),
    }


def test_e14_alert_detection():
    corpus = build_corpus()
    results = {}
    print(f"\nE14 alert detection ({'smoke' if SMOKE else 'full'} corpus, "
          f"{EPOCH:.0f}s epochs)")
    print(f"{'scenario':<20}{'arm':<10}{'detected':>9}{'latency':>9}"
          f"{'FPs':>5}{'shed':>7}")

    for kind, (scenario, queries, triggers, expected) in corpus.items():
        entry = {"window": list(scenario.window),
                 "subject": int_to_ip(scenario.subject_ip),
                 "packets": len(scenario.packets)}
        for arm, shed in (("baseline", False), ("shed", True)):
            rows, shed_fraction = run_arm(scenario, queries, triggers, shed)
            trigger_names = [spec.split(":", 1)[0] for spec in triggers]
            scores = {name: score(rows, name, scenario)
                      for name in trigger_names}
            entry[arm] = {"triggers": scores,
                          "shed_fraction": shed_fraction}

            if expected is None:
                # Negative control: nothing may fire, shed or not.
                for name, result in scores.items():
                    assert result["raises"] == 0, (kind, arm, name, result)
                detected, latency, fps = False, None, 0
            else:
                result = scores[expected]
                # Every attack is caught within two epochs of its start,
                # at the right subject, with no stray RAISEs -- in the
                # shedding arm too (Horvitz-Thompson keeps the epoch
                # aggregates unbiased).
                assert result["detected"], (kind, arm, result)
                assert result["detection_latency_s"] <= 2 * EPOCH, \
                    (kind, arm, result)
                assert result["false_positives"] == 0, (kind, arm, result)
                detected = True
                latency = result["detection_latency_s"]
                fps = result["false_positives"]
            if shed:
                assert shed_fraction > 0.0, \
                    (kind, "adaptive controller never shed")
            latency_text = f"{latency:.1f}s" if latency is not None else "-"
            print(f"{kind:<20}{arm:<10}{str(detected):>9}"
                  f"{latency_text:>9}{fps:>5}{shed_fraction:>7.1%}")
        results[kind] = entry

    (REPO_ROOT / "BENCH_E14.json").write_text(json.dumps({
        "experiment": "E14 alert detection latency and false positives",
        "smoke": SMOKE,
        "epoch_s": EPOCH,
        "detectors": {"synflood": SYN_TRIGGER, "portscan": SCAN_TRIGGER,
                      "dnsamp": AMP_TRIGGER},
        "scenarios": results,
    }, indent=2) + "\n")
    print(f"-> {REPO_ROOT / 'BENCH_E14.json'}")
