"""Recovery-plane cost on the E2 headline workload.

Two numbers gate the checkpoint/restore layer (recorded in
BENCH_RECOVERY.json next to BENCH_E2.json):

* **Checkpoint overhead**: the E2 workload with the supervisor cutting
  checkpoints at the default interval must stay within 5% of the
  unsupervised run.  Snapshots are small (group tables and window
  buffers of reduced data) and cut only at quiescent pump boundaries,
  so the cost is a handful of encodes per stream-second.
* **Recovery under load**: after a mid-stream crash and restart, the
  post-restart feed throughput must be within 10% of pre-crash -- the
  restore+replay repairs state without leaving the engine degraded
  (no lingering suspension, no fallback path left switched on).
"""

import json
import time
from pathlib import Path

from repro.core.stream_manager import DEFAULT_BATCH_SIZE
from repro.faults import OperatorFault

from test_e2_headline_throughput import build_engine, make_packets

REPO_ROOT = Path(__file__).resolve().parent.parent

ROUNDS = 8


def _feed_time(recover, packets, batch_size=DEFAULT_BATCH_SIZE):
    gs = build_engine(batch_size=batch_size)
    if recover:
        # The engine is already started: enable_recovery cuts the
        # baseline checkpoint itself.
        gs.enable_recovery(checkpoint_interval=1.0)
    start = time.perf_counter()
    gs.feed(packets, pump_every=1024)
    elapsed = time.perf_counter() - start
    return elapsed, gs


def test_e2_recovery_checkpoint_overhead():
    packets = make_packets()
    # Interleave the two configurations so background-load drift hits
    # both equally, and compare minima (the standard throughput read).
    plain = []
    supervised_times = []
    checkpoints = 0
    for _ in range(ROUNDS):
        plain.append(_feed_time(False, packets)[0])
        elapsed, gs = _feed_time(True, packets)
        supervised_times.append(elapsed)
        checkpoints = gs.recovery_report()["checkpoints_taken"]
    overhead = min(supervised_times) / min(plain) - 1.0
    print(f"\nE2 checkpoint overhead: {overhead * 100:+.2f}% "
          f"({checkpoints} checkpoints at the default 1.0 s interval; "
          f"{len(packets) / min(supervised_times):,.0f} pps supervised vs "
          f"{len(packets) / min(plain):,.0f} pps plain)")

    (REPO_ROOT / "BENCH_RECOVERY.json").write_text(json.dumps({
        "experiment": "recovery plane overhead on E2",
        "packets": len(packets),
        "rounds": ROUNDS,
        "checkpoint_interval": 1.0,
        "checkpoints_taken": checkpoints,
        "pps_plain": len(packets) / min(plain),
        "pps_supervised": len(packets) / min(supervised_times),
        "checkpoint_overhead_pct": overhead * 100,
    }, indent=2))

    assert checkpoints >= 2  # the supervisor actually ran
    assert overhead < 0.05, (
        f"checkpointing costs {overhead * 100:.1f}% of E2 throughput "
        f"(budget: 5%)")


def test_e2_recovery_throughput_after_restart():
    # An armed fault forces the scalar path, so pre- and post-crash
    # windows are measured on the same execution path.
    packets = make_packets()
    chunk_size = 5_000
    chunks = [packets[i:i + chunk_size]
              for i in range(0, len(packets), chunk_size)]

    gs = build_engine(batch_size=1)
    supervisor = gs.enable_recovery(checkpoint_interval=1.0)
    gs.inject_faults([OperatorFault("both", at_tuple=15_000, times=1)])

    times = []
    crash_chunk = None
    for index, chunk in enumerate(chunks):
        start = time.perf_counter()
        gs.feed(chunk, pump_every=1024)
        times.append(time.perf_counter() - start)
        if crash_chunk is None and supervisor.restarts_total:
            crash_chunk = index
    gs.flush()

    assert supervisor.restarts_total == 1
    assert gs.rts.quarantined == {}
    assert crash_chunk is not None
    pre = [t for t in times[:crash_chunk]]
    post = [t for t in times[crash_chunk + 1:]]
    assert pre and post, f"crash chunk {crash_chunk} leaves no clean window"
    pre_pps = chunk_size / min(pre)
    post_pps = chunk_size / min(post)
    ratio = post_pps / pre_pps
    print(f"\nE2 recovery under load: {pre_pps:,.0f} pps pre-crash, "
          f"{post_pps:,.0f} pps post-restart ({ratio:.3f}x, "
          f"crash in chunk {crash_chunk}, "
          f"{supervisor.replayed_items} items replayed)")

    data = json.loads((REPO_ROOT / "BENCH_RECOVERY.json").read_text())
    data.update({
        "pps_pre_crash": pre_pps,
        "pps_post_restart": post_pps,
        "post_restart_ratio": ratio,
        "replayed_items": supervisor.replayed_items,
    })
    (REPO_ROOT / "BENCH_RECOVERY.json").write_text(json.dumps(data, indent=2))

    assert ratio > 0.9, (
        f"post-restart throughput {post_pps:,.0f} pps is more than 10% "
        f"below pre-crash {pre_pps:,.0f} pps")
