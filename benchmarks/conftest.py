"""Shared fixtures for the benchmark/experiment harness.

Each ``test_eN_*.py`` module regenerates one table/figure of the paper
(see DESIGN.md section 3 for the experiment index).  Modules print the
rows they regenerate, assert the paper's qualitative *shape* (who wins,
rough factors, crossovers), and use pytest-benchmark for the
wall-clock-measured entries (E2, E6).

Run:  pytest benchmarks/ --benchmark-only
(the shape assertions also run under plain ``pytest benchmarks/``)
"""

import sys
from pathlib import Path

import pytest

# Make `tests.conftest` (shared packet builders) importable when pytest
# is invoked as a bare `pytest benchmarks/` (no cwd on sys.path).
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.gsql.schema import PacketView
from repro.workloads.generators import background_pool, http_port80_pool


@pytest.fixture(scope="session")
def section4_pools():
    """The Section 4 packet pools, built once per session."""
    return (http_port80_pool(seed=1), background_pool(seed=2))


@pytest.fixture(scope="session")
def port80_qualifier():
    """qualifier(packet) -> payload length if it passes the port-80 LFTA
    filter, else None.  Memoized per pool frame for speed; the decision
    itself is made by full header parsing, the same answer the real
    LFTA/BPF machinery produces (asserted in tests/test_nic.py)."""
    cache = {}

    def qualifier(packet):
        key = id(packet.data)
        if key not in cache:
            view = PacketView(packet)
            if view.tcp is not None and view.tcp.dst_port == 80:
                cache[key] = len(view.payload or b"")
            else:
                cache[key] = None
        return cache[key]

    return qualifier
