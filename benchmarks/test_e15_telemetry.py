"""E15 (new) -- self-telemetry overhead and meta-alert detection.

Gigascope monitors itself with its own query language: PR 7 publishes
engine internals as first-class ``_gs_*`` GSQL streams sampled at pump
boundaries, plus a sampling wall-clock profiler bracketing the pump
drain.  Monitoring you cannot afford to leave on is useless, and
monitoring that cannot see the engine's own failures is worse, so E15
measures both halves:

1. **Overhead**: E2 headline throughput with telemetry fully enabled
   (all five streams sampled each virtual second, profiler timing every
   pump cycle, live subscribers draining the rows) versus disabled.
   Target: < 5%.

2. **Meta-alert detection**: an injected channel-capacity storm
   (``channel_storm`` fault) must be caught by an alert trigger that
   reads *only* the ``_gs_channel`` telemetry stream -- no access to
   the fault ledger or the data path -- with zero false positives on
   the clean run, and the detection latency is reported in virtual
   time.

Results land in BENCH_E15.json; the storm run's telemetry rows land in
TELEMETRY_E15.jsonl (the CI failure artifact).  ``GS_E15_SMOKE=1``
shrinks the workload for CI.
"""

import json
import os
import time
from pathlib import Path

from repro import Gigascope
from repro.workloads.generators import http_port80_pool, packet_stream

REPO_ROOT = Path(__file__).resolve().parent.parent
SMOKE = os.environ.get("GS_E15_SMOKE") == "1"
PACKET_COUNT = 4_000 if SMOKE else 20_000
ROUNDS = 2 if SMOKE else 5

QUERIES = """
    DEFINE query_name link0;
    Select time, destIP, len From eth0.tcp Where destPort = 80;

    DEFINE query_name watch;
    Select time, destIP From link0 Where len >= 0;

    DEFINE query_name appmon;
    Select tb, count(*), sum(len) From link0 Group by time/10 as tb
"""

STORM_AT = 3.0
STORM_DURATION = 2.0
STORM_TRIGGER = ("chanstorm:on=_gs_channel,key=channel,"
                 "when=sum(dropped_delta) > 40,epoch=2,"
                 "raise_for=1,clear_for=2,severity=warning")


def _merge_results(section, payload):
    path = REPO_ROOT / "BENCH_E15.json"
    doc = {}
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except ValueError:
            doc = {}
    doc["experiment"] = "E15 self-telemetry"
    doc["smoke"] = SMOKE
    doc[section] = payload
    path.write_text(json.dumps(doc, indent=2))


def make_packets(count=PACKET_COUNT):
    pool = http_port80_pool(seed=1)
    stream = packet_stream(pool, rate_mbps=50.0, duration_s=60.0,
                           interface="eth0", seed=3)
    packets = []
    for packet in stream:
        packets.append(packet)
        if len(packets) >= count:
            break
    return packets


def _time_feed(packets, telemetry):
    gs = Gigascope(heartbeat_interval=1.0)
    if telemetry:
        gs.enable_telemetry(interval=1.0, profile_every=1)
    gs.add_queries(QUERIES)
    gs.subscribe("appmon")
    if telemetry:
        # Live subscribers, so the sampled rows travel the full path.
        gs.subscribe("_gs_channel")
        gs.subscribe("_gs_operator")
    gs.start()
    start = time.perf_counter()
    gs.feed(packets, pump_every=1024)
    return time.perf_counter() - start


def test_e15_telemetry_overhead():
    packets = make_packets()
    _time_feed(packets, True), _time_feed(packets, False)  # warmup
    with_telemetry, without = [], []
    for _ in range(ROUNDS):  # interleaved so drift hits both equally
        with_telemetry.append(_time_feed(packets, True))
        without.append(_time_feed(packets, False))
    best_on, best_off = min(with_telemetry), min(without)
    pps_on = len(packets) / best_on
    pps_off = len(packets) / best_off
    overhead = best_on / best_off - 1.0
    print(f"\nE15 overhead: telemetry on {pps_on:,.0f} pps, "
          f"off {pps_off:,.0f} pps -> {overhead:+.2%} overhead")

    _merge_results("overhead", {
        "packets": len(packets),
        "rounds": ROUNDS,
        "pps_telemetry_on": pps_on,
        "pps_telemetry_off": pps_off,
        "overhead_fraction": overhead,
    })
    assert overhead < 0.05, (
        f"self-telemetry costs {overhead:.1%} (> 5%) on the E2 workload")


def _detection_arm(storm):
    """One detection run; the trigger sees nothing but _gs_channel."""
    gs = Gigascope(seed=7, heartbeat_interval=0.5, channel_capacity=256)
    gs.enable_telemetry(interval=0.5)
    gs.add_query("""
        DEFINE query_name pkts;
        Select time, len
        From tcp
    """)
    gs.enable_alerts([STORM_TRIGGER])
    data = gs.subscribe("pkts")
    alerts = gs.subscribe("alerts")
    telemetry = gs.subscribe("_gs_channel")
    if storm:
        gs.inject_faults([
            f"channel_storm:at={STORM_AT},duration={STORM_DURATION},"
            f"capacity=4"])
    gs.start()
    pool = http_port80_pool(seed=7)
    # Same 10 s stream in smoke mode: CLEAR needs clear_for=2 clean
    # 2 s epochs after the storm window ends at t=5.
    gs.feed(packet_stream(pool, rate_mbps=2.0, duration_s=10.0, seed=7),
            pump_every=64)
    gs.flush()
    assert data.poll(), "data query produced nothing"
    return alerts.poll(), telemetry.poll()


def _dump_telemetry(rows):
    from repro.obs.telemetry import telemetry_schema
    names = telemetry_schema("_gs_channel").names
    with open(REPO_ROOT / "TELEMETRY_E15.jsonl", "w") as handle:
        for row in rows:
            record = {"stream": "_gs_channel"}
            for key, value in zip(names, row):
                record[key] = (value.decode("utf-8", "replace")
                               if isinstance(value, bytes) else value)
            json.dump(record, handle)
            handle.write("\n")


def test_e15_meta_alert_detects_channel_storm():
    clean_alerts, _clean_rows = _detection_arm(storm=False)
    storm_alerts, storm_rows = _detection_arm(storm=True)
    _dump_telemetry(storm_rows)

    false_positives = [row for row in clean_alerts if row[3] == b"RAISE"]
    raises = [row for row in storm_alerts if row[3] == b"RAISE"]
    clears = [row for row in storm_alerts if row[3] == b"CLEAR"]
    assert not false_positives, f"clean run raised: {false_positives}"
    assert raises, "storm went undetected through the telemetry stream"
    latency = raises[0][0] - STORM_AT
    print(f"\nE15 detection: storm at t={STORM_AT}s detected at "
          f"t={raises[0][0]}s (latency {latency:.1f}s virtual); "
          f"{len(raises)} RAISE / {len(clears)} CLEAR; "
          f"0 false positives on the clean run")
    # The 2s evaluation epoch bounds the latency at two epochs.
    assert 0.0 <= latency <= 4.0
    assert clears, "storm alert never cleared after the fault window"

    _merge_results("detection", {
        "storm_at": STORM_AT,
        "storm_duration": STORM_DURATION,
        "first_raise_time": raises[0][0],
        "latency_s": latency,
        "raises": len(raises),
        "clears": len(clears),
        "false_positives_clean": len(false_positives),
        "telemetry_rows": len(storm_rows),
    })
