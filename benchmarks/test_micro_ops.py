"""Micro-benchmarks of the hot paths (pytest-benchmark).

Not tied to a paper table; these guard the per-packet costs that every
experiment's wall-clock depends on: packet interpretation, the LFTA
fast path, LPM lookups, checksums, capture-file IO, and the HFTA
operators.  Run with ``pytest benchmarks/ --benchmark-only``.
"""

import io
import random

import pytest

from repro.gsql.codegen import ExprCompiler
from repro.gsql.functions import builtin_functions
from repro.gsql.parser import parse_query
from repro.gsql.planner import plan_query
from repro.gsql.schema import PacketView, builtin_registry
from repro.gsql.semantic import analyze
from repro.net.checksum import internet_checksum
from repro.net.lpm import PrefixTable
from repro.net.packet import CapturedPacket
from repro.net.pcap import PcapReader, PcapWriter
from repro.operators.lfta import LftaNode
from repro.workloads.generators import http_port80_pool


@pytest.fixture(scope="module")
def packets():
    pool = http_port80_pool(seed=1, pool_size=256)
    return [CapturedPacket(timestamp=i * 0.001, data=pool.frames[i % 256])
            for i in range(2000)]


def test_bench_packet_interpretation(benchmark, packets):
    """Full tcp-protocol interpretation of every field."""
    tcp = builtin_registry().get("tcp")

    def interpret_all():
        total = 0
        for packet in packets:
            total += len(tcp.interpret(packet))
        return total

    assert benchmark(interpret_all) == len(packets)


def test_bench_lfta_filter_path(benchmark, packets):
    """The per-packet LFTA fast path: sparse interpret + predicate +
    projection (the engine's innermost loop)."""
    functions = builtin_functions()
    analyzed = analyze(
        parse_query("DEFINE query_name q; Select time, destIP From tcp "
                    "Where destPort = 80"),
        builtin_registry(), functions)
    plan = plan_query(analyzed, functions)

    def run():
        lfta = LftaNode(plan.lftas[0], analyzed,
                        ExprCompiler(analyzed, functions))
        for packet in packets:
            lfta.accept_packet(packet)
        return lfta.stats.tuples_out

    assert benchmark(run) == len(packets)  # pool is all port 80


def test_bench_lfta_partial_aggregation(benchmark, packets):
    functions = builtin_functions()
    analyzed = analyze(
        parse_query("DEFINE query_name q; Select tb, srcIP, count(*), "
                    "sum(len) From tcp Group by time/1 as tb, srcIP"),
        builtin_registry(), functions)
    plan = plan_query(analyzed, functions)

    def run():
        lfta = LftaNode(plan.lftas[0], analyzed,
                        ExprCompiler(analyzed, functions))
        for packet in packets:
            lfta.accept_packet(packet)
        lfta.flush()
        return lfta.stats.tuples_in

    assert benchmark(run) == len(packets)


@pytest.fixture(scope="module")
def selection_rows(packets):
    """Interpreted rows + the fused and chained batch kernels for the
    same selection plan (DESIGN sec 10: fused codegen vs a chain of the
    scalar predicate and projection callables)."""
    functions = builtin_functions()
    analyzed = analyze(
        parse_query("DEFINE query_name q; Select time, destIP From tcp "
                    "Where destPort = 80"),
        builtin_registry(), functions)
    plan = plan_query(analyzed, functions)
    lfta_plan = plan.lftas[0]
    lfta = LftaNode(lfta_plan, analyzed, ExprCompiler(analyzed, functions))
    rows = [row for packet in packets for row in lfta._interpret(packet)]
    fused = ExprCompiler(analyzed, functions).batch_select_fn(
        lfta_plan.predicates, lfta_plan.project_exprs, (None, None))
    chained = ExprCompiler(analyzed, functions, None, "interpreted"
                           ).batch_select_fn(
        lfta_plan.predicates, lfta_plan.project_exprs, (None, None))
    return rows, fused, chained


def test_bench_batch_select_fused(benchmark, selection_rows):
    """One generated function: interpret -> predicate -> project fused."""
    rows, fused, _ = selection_rows

    def run():
        out = []
        fused(rows, out.append)
        return len(out)

    assert benchmark(run) == len(rows)  # pool is all port 80


def test_bench_batch_select_chained(benchmark, selection_rows):
    """The same plan as a chain of scalar callables, for comparison."""
    rows, _, chained = selection_rows

    def run():
        out = []
        chained(rows, out.append)
        return len(out)

    assert benchmark(run) == len(rows)


def test_bench_channel_push_scalar(benchmark):
    from repro.core.channels import Channel

    items = [(i, i * 2) for i in range(10_000)]

    def run():
        channel = Channel()
        push = channel.push
        for item in items:
            push(item)
        return len(channel.drain())

    assert benchmark(run) == len(items)


def test_bench_channel_push_many(benchmark):
    """Block transport of the same items (amortized call overhead)."""
    from repro.core.channels import Channel

    items = [(i, i * 2) for i in range(10_000)]

    def run():
        channel = Channel()
        channel.push_many(items)
        return len(channel.pop_many())

    assert benchmark(run) == len(items)


def test_bench_lpm_lookup(benchmark):
    rng = random.Random(7)
    table = PrefixTable()
    for _ in range(5000):
        length = rng.randrange(8, 25)
        network = rng.randrange(1 << 32) & (~((1 << (32 - length)) - 1))
        table.add((network & 0xFFFFFFFF, length), length)
    addresses = [rng.randrange(1 << 32) for _ in range(10_000)]

    def lookups():
        hits = 0
        for address in addresses:
            if table.lookup(address) is not None:
                hits += 1
        return hits

    benchmark(lookups)


def test_bench_internet_checksum(benchmark):
    data = bytes(range(256)) * 6  # a 1536-byte frame

    def checksums():
        total = 0
        for _ in range(200):
            total ^= internet_checksum(data)
        return total

    benchmark(checksums)


def test_bench_pcap_round_trip(benchmark, packets):
    def round_trip():
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        for packet in packets:
            writer.write(packet)
        buffer.seek(0)
        return sum(1 for _ in PcapReader(buffer))

    assert benchmark(round_trip) == len(packets)


def test_bench_engine_end_to_end(benchmark, packets):
    """Whole-engine throughput on the flagship split query."""
    from repro import Gigascope

    def run():
        gs = Gigascope(heartbeat_interval=None)
        gs.add_query(r"""
            DEFINE query_name q;
            Select tb, count(*) From tcp
            Where destPort = 80 and str_match_regex(data, '^[^\n]*HTTP/1.')
            Group by time/1 as tb
        """)
        sub = gs.subscribe("q")
        gs.start()
        gs.feed(packets, pump_every=512)
        gs.flush()
        return sum(c for _tb, c in sub.poll())

    result = benchmark(run)
    assert result > 0
