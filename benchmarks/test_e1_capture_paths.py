"""E1 -- the Section 4 performance experiment (the paper's evaluation).

"We tried four approaches: 1) dumping the data to disk ... 2) reading
data from the ethernet card using libpcap, then discarding the packet
... 3) running Gigascope with the LFTAs executing in the host ...
4) running Gigascope with the LFTAs executing on the Tigon gigabit
ethernet card.  We chose a 2% packet drop rate as the maximum
acceptable loss."

Paper's reported knees:  disk 180 / libpcap 480 / host 480 / NIC <2%
at 610 Mbit/s (source-limited).  This module regenerates both the loss
curve (the figure) and the knee table, and asserts the shape:

* disk is by far the worst;
* libpcap and gigascope-host are similar (interrupt livelock is the
  bottleneck, not query processing);
* the NIC configuration is the best and sails through 610 Mbit/s.
"""

import pytest

from repro.sim.capture import CaptureConfig, CaptureSimulation, find_loss_knee
from repro.workloads.generators import section4_stream

DURATION_S = 0.7
THRESHOLD = 0.02

PAPER_KNEES = {
    CaptureConfig.DISK_DUMP: 180.0,
    CaptureConfig.LIBPCAP_DISCARD: 480.0,
    CaptureConfig.GIGASCOPE_HOST: 480.0,
    CaptureConfig.GIGASCOPE_NIC: 610.0,  # lower bound: source-limited
}


def loss_at(config, mbps, pools, qualifier):
    stream = section4_stream(background_mbps=max(0.0, mbps - 60.0),
                             duration_s=DURATION_S, pools=pools)
    sim = CaptureSimulation(config, qualifier=qualifier)
    return sim.run(stream).loss_rate


@pytest.fixture(scope="module")
def knees(section4_pools, port80_qualifier):
    result = {}
    for config in CaptureConfig:
        result[config] = find_loss_knee(
            lambda mbps: loss_at(config, mbps, section4_pools,
                                 port80_qualifier),
            low=80.0, high=900.0, threshold=THRESHOLD, tolerance=10.0)
    return result


def test_e1_loss_curve(section4_pools, port80_qualifier):
    """The figure: loss rate vs offered load for all four stacks."""
    rates = [120, 180, 240, 330, 420, 480, 540, 610, 700]
    print("\nE1 loss rate vs offered Mbit/s (paper Section 4)")
    header = "config           " + "".join(f"{r:>8}" for r in rates)
    print(header)
    series = {}
    for config in CaptureConfig:
        losses = [loss_at(config, r, section4_pools, port80_qualifier)
                  for r in rates]
        series[config] = dict(zip(rates, losses))
        print(f"{config.value:<17}" + "".join(f"{l:>8.3f}" for l in losses))
    # Shape assertions on the curve itself.
    assert series[CaptureConfig.DISK_DUMP][240] > THRESHOLD
    assert series[CaptureConfig.LIBPCAP_DISCARD][240] <= THRESHOLD
    assert series[CaptureConfig.GIGASCOPE_HOST][330] <= THRESHOLD
    assert series[CaptureConfig.GIGASCOPE_NIC][610] <= THRESHOLD
    # Past the livelock point the host paths collapse hard.
    assert series[CaptureConfig.LIBPCAP_DISCARD][610] > 0.5
    assert series[CaptureConfig.GIGASCOPE_HOST][610] > 0.5


def test_e1_knee_table(knees):
    """The table: max sustainable rate at <=2% loss per configuration."""
    print("\nE1 2%-loss knees (Mbit/s): paper vs measured")
    print(f"{'config':<18}{'paper':>8}{'measured':>10}")
    for config in CaptureConfig:
        paper = PAPER_KNEES[config]
        print(f"{config.value:<18}{paper:>8.0f}{knees[config]:>10.0f}")

    disk = knees[CaptureConfig.DISK_DUMP]
    libpcap = knees[CaptureConfig.LIBPCAP_DISCARD]
    host = knees[CaptureConfig.GIGASCOPE_HOST]
    nic = knees[CaptureConfig.GIGASCOPE_NIC]

    # Ordering: disk << libpcap ~ host < nic
    assert disk < libpcap * 0.6
    assert disk < host * 0.6
    # "Options 2) and 3) had similar performance"
    assert abs(libpcap - host) / libpcap < 0.15
    # NIC wins and clears the paper's 610 Mbit/s
    assert nic > host
    assert nic >= 610.0
    # Rough factor fidelity: paper has libpcap/disk ~ 2.7, nic/disk ~ 3.4
    assert 1.8 < libpcap / disk < 3.8
    assert nic / disk > 2.5


def test_e1_query_answer_correct_under_load(section4_pools):
    """At a sustainable rate, the actual Gigascope query over the same
    stream produces the right HTTP fraction (the analysis the whole
    experiment exists to run)."""
    import re
    from repro import Gigascope
    from repro.gsql.schema import PacketView

    gs = Gigascope()
    gs.add_queries(r"""
        DEFINE query_name p80;
        Select tb, count(*) From tcp Where destPort = 80
        Group by time/10 as tb;

        DEFINE query_name p80http;
        Select tb, count(*) From tcp
        Where destPort = 80 and str_match_regex(data, '^[^\n]*HTTP/1.')
        Group by time/10 as tb
    """)
    all_sub = gs.subscribe("p80")
    http_sub = gs.subscribe("p80http")
    gs.start()
    packets = list(section4_stream(background_mbps=60.0, duration_s=1.0,
                                   pools=section4_pools))
    gs.feed(packets)
    gs.flush()
    total = sum(count for _tb, count in all_sub.poll())
    http = sum(count for _tb, count in http_sub.poll())

    pattern = re.compile(rb"^[^\n]*HTTP/1.")
    expected_total = 0
    expected_http = 0
    for packet in packets:
        view = PacketView(packet)
        if view.tcp is not None and view.tcp.dst_port == 80:
            expected_total += 1
            if pattern.search(view.payload or b""):
                expected_http += 1
    assert total == expected_total
    assert http == expected_http
    print(f"\nE1 sanity: HTTP fraction = {http}/{total} = {http/total:.1%}")


def test_e1_nic_model_cross_validation(section4_pools, port80_qualifier):
    """The cost-model NIC path and the *real* on-NIC LFTA machinery make
    identical qualifying decisions: the sweep's qualifier callable is a
    faithful stand-in for running the LFTA on the card."""
    from repro.gsql.codegen import ExprCompiler
    from repro.gsql.functions import builtin_functions
    from repro.gsql.parser import parse_query
    from repro.gsql.planner import plan_query
    from repro.gsql.schema import builtin_registry
    from repro.gsql.semantic import analyze
    from repro.nic.bpf import compile_pushed_predicates
    from repro.nic.nic import Nic
    from repro.nic.nic_rts import NicRts
    from repro.operators.lfta import LftaNode

    functions = builtin_functions()
    analyzed = analyze(
        parse_query("DEFINE query_name f80; Select time, srcIP, data "
                    "From tcp Where destPort = 80"),
        builtin_registry(), functions)
    plan = plan_query(analyzed, functions)
    lfta = LftaNode(plan.lftas[0], analyzed, ExprCompiler(analyzed, functions))
    nic = Nic(
        service_us=1.0,
        ring_slots=1 << 20,  # capacity out of the way: semantics only
        bpf=compile_pushed_predicates(plan.lftas[0].hints.pushed),
        rts=NicRts([lfta]),
    )
    packets = list(section4_stream(background_mbps=40.0, duration_s=0.2,
                                   pools=section4_pools))
    expected = sum(1 for p in packets if port80_qualifier(p) is not None)
    for index, packet in enumerate(packets):
        nic.receive(packet, float(index))
    assert nic.stats.delivered_tuples == expected
    assert nic.stats.ring_dropped == 0
    print(f"\nE1 cross-validation: real on-NIC LFTA delivered "
          f"{nic.stats.delivered_tuples} tuples == qualifier count")
